package netsim

import (
	"testing"

	"repro/internal/ipv6"
)

// TestEngineCounters: the engine's cumulative totals track every link
// crossing — transmissions, bytes and drops — and a lossy link shows up
// in Dropped without inflating Transmissions.
func TestEngineCounters(t *testing.T) {
	n := buildGroupNet(t, 1)
	eng := n.grp.Shard(0)
	c0 := eng.Counters()
	// Building the topology already bumps the flow-cache generation
	// (every Connect invalidates compiled paths); traffic counters must
	// still be zero before the first injection.
	if c0.FastPathInvalidations == 0 {
		t.Error("FastPathInvalidations = 0 after Connect, want generation bumps counted")
	}
	c0.FastPathInvalidations = 0
	if c0 != (Counters{}) {
		t.Fatalf("fresh engine counters = %+v, want zero traffic", c0)
	}
	var injected uint64
	for i := 0; i < 10; i++ {
		pkt := echoTo(t, n.addrs[0], uint16(i))
		injected += uint64(len(pkt))
		n.grp.Inject(pkt)
	}
	n.edge.Drain()
	c := eng.Counters()
	// Each echo crosses the scanner-router link twice: request out,
	// reply back.
	if c.Transmissions != 20 {
		t.Errorf("Transmissions = %d, want 20", c.Transmissions)
	}
	if c.Events != eng.Steps() {
		t.Errorf("Events = %d, Steps = %d — must agree", c.Events, eng.Steps())
	}
	if c.Bytes < 2*injected {
		t.Errorf("Bytes = %d, want at least %d (requests + replies)", c.Bytes, 2*injected)
	}
	if c.Dropped != 0 {
		t.Errorf("Dropped = %d on a lossless link", c.Dropped)
	}
}

// TestEngineCountersCountDrops: on a 100%-loss link every attempt is
// counted in both Transmissions (attempts, matching per-link
// LinkStats.Packets) and Dropped.
func TestEngineCountersCountDrops(t *testing.T) {
	eng := New(7)
	edge := NewEdge("e", ipv6.MustParseAddr("2001:beef::100"))
	r := NewRouter("r", ErrorPolicy{})
	rif := r.AddIface(ipv6.MustParseAddr("2001:100::1"), "r:up")
	eng.Connect(edge.Iface(), rif, 1.0)
	for i := 0; i < 5; i++ {
		eng.Inject(edge.Iface(), echoTo(t, rif.Addr(), uint16(i)))
	}
	c := eng.Counters()
	if c.Dropped != 5 {
		t.Errorf("Dropped = %d, want 5", c.Dropped)
	}
	if c.Transmissions != 5 {
		t.Errorf("Transmissions = %d, want 5 attempts counted", c.Transmissions)
	}
}

// TestGroupCountersSumShards: the group view is the sum of its shards.
func TestGroupCountersSumShards(t *testing.T) {
	n := buildGroupNet(t, 3)
	for rep := 0; rep < 2; rep++ {
		for s, addr := range n.addrs {
			n.grp.Inject(echoTo(t, addr, uint16(rep*3+s)))
		}
	}
	n.edge.Drain()
	var want Counters
	for s := 0; s < 3; s++ {
		c := n.grp.Shard(s).Counters()
		if c.Transmissions == 0 {
			t.Errorf("shard %d saw no traffic", s)
		}
		want.Events += c.Events
		want.Transmissions += c.Transmissions
		want.Bytes += c.Bytes
		want.Dropped += c.Dropped
		want.FastPathHits += c.FastPathHits
		want.FastPathMisses += c.FastPathMisses
		want.FastPathInvalidations += c.FastPathInvalidations
	}
	if got := n.grp.Counters(); got != want {
		t.Errorf("group counters = %+v, shard sum = %+v", got, want)
	}
}
