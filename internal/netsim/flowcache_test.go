package netsim

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/ipv6"
	"repro/internal/wire"
)

// mirrorPair is two identically built testNets, one replaying compiled
// flows and one forced onto the interpreted path. Every differential
// test drives both with the same inputs and demands byte-identical
// observable behavior.
type mirrorPair struct {
	fast, slow *testNet
}

func buildMirror(t *testing.T, behavior CPEBehavior, policy ErrorPolicy) mirrorPair {
	t.Helper()
	p := mirrorPair{
		fast: buildTestNet(t, behavior, policy),
		slow: buildTestNet(t, behavior, policy),
	}
	p.slow.eng.SetFastPath(false)
	return p
}

// inject sends the same echo request into both nets.
func (p mirrorPair) inject(t *testing.T, dst ipv6.Addr, hopLimit uint8, seq uint16) {
	t.Helper()
	pkt, err := wire.BuildEchoRequest(scannerAddr, dst, hopLimit, 0xbeef, seq, []byte("probe"))
	if err != nil {
		t.Fatal(err)
	}
	p.fast.eng.Inject(p.fast.scanner.Iface(), pkt)
	p.slow.eng.Inject(p.slow.scanner.Iface(), pkt)
}

// compare drains both scanners and checks every observable the fast
// path promises to preserve: reply bytes (and order), per-link stats in
// both directions, engine transmission/byte/drop totals, and the nodes'
// forwarding counters. Events are exempt — fusing them is the point.
func (p mirrorPair) compare(t *testing.T, tag string) {
	t.Helper()
	fr, sr := p.fast.scanner.Drain(), p.slow.scanner.Drain()
	if len(fr) != len(sr) {
		t.Fatalf("%s: fastpath delivered %d replies, interpreted %d", tag, len(fr), len(sr))
	}
	for i := range fr {
		if !bytes.Equal(fr[i], sr[i]) {
			t.Fatalf("%s: reply %d differs:\nfast %x\nslow %x", tag, i, fr[i], sr[i])
		}
	}
	fl, sl := p.fast.eng.Links(), p.slow.eng.Links()
	if len(fl) != len(sl) {
		t.Fatalf("%s: link counts differ", tag)
	}
	for i := range fl {
		fe, se := fl[i].Ends(), sl[i].Ends()
		for end := 0; end < 2; end++ {
			if got, want := fl[i].StatsFrom(fe[end]), sl[i].StatsFrom(se[end]); got != want {
				t.Errorf("%s: link %d dir %s: fastpath %+v, interpreted %+v",
					tag, i, fe[end].Name(), got, want)
			}
		}
	}
	fc, sc := p.fast.eng.Counters(), p.slow.eng.Counters()
	if fc.Transmissions != sc.Transmissions || fc.Bytes != sc.Bytes || fc.Dropped != sc.Dropped {
		t.Errorf("%s: counters diverge: fastpath %+v, interpreted %+v", tag, fc, sc)
	}
	if p.fast.core.CountForwarded != p.slow.core.CountForwarded {
		t.Errorf("%s: core forwarded %d vs %d", tag, p.fast.core.CountForwarded, p.slow.core.CountForwarded)
	}
	if p.fast.isp.CountForwarded != p.slow.isp.CountForwarded {
		t.Errorf("%s: isp forwarded %d vs %d", tag, p.fast.isp.CountForwarded, p.slow.isp.CountForwarded)
	}
	if p.fast.cpe.CountForwarded != p.slow.cpe.CountForwarded {
		t.Errorf("%s: cpe forwarded %d vs %d", tag, p.fast.cpe.CountForwarded, p.slow.cpe.CountForwarded)
	}
}

// TestFlowCachePropertyNoStaleReplay is the randomized invalidation
// property: under an arbitrary interleaving of probes and topology
// mutations, a compiled path must never replay stale — the mirrored
// interpreted engine is ground truth after every single operation.
// Mutations are applied to both nets; InvalidateFlows additionally
// fires on the fast net alone, since discarding valid cache state must
// be invisible.
func TestFlowCachePropertyNoStaleReplay(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			p := buildMirror(t, CPEBehavior{}, ErrorPolicy{})

			// Destination pool: CPE WAN, LAN host, the ISP's own
			// interfaces, unassigned space (several /64s of one region
			// and of distinct regions), unused space inside the LAN
			// delegation, and off-block transit.
			dsts := []ipv6.Addr{
				wanAddr,
				lanHost,
				ipv6.MustParseAddr("2001:db8:fffe::2"),
				ipv6.MustParseAddr("2001:db8:1234:5678::1"),
				ipv6.MustParseAddr("2001:db8:aaaa:bbbb::1"),
				ipv6.MustParseAddr("2001:db8:aaaa:bbbc::1"),
				ipv6.MustParseAddr("2001:db8:cccc::99"),
				ipv6.MustParseAddr("2001:db8:4321:8769::77"),
				ipv6.MustParseAddr("2001:beef::55"),
			}
			hops := []uint8{64, 64, 64, 255, 3, 2}

			// Fresh /64s the mutation stream delegates one at a time —
			// each Delegate flips subsequent probes of that /64 (and
			// shrinks the unassigned region around it).
			fresh := []ipv6.Prefix{
				ipv6.MustParsePrefix("2001:db8:aaaa:bbbb::/64"),
				ipv6.MustParsePrefix("2001:db8:cccc::/64"),
				ipv6.MustParsePrefix("2001:db8:aaaa:bbb8::/64"),
			}

			seq := uint16(1)
			for op := 0; op < 80; op++ {
				switch r := rng.Intn(10); {
				case r < 7: // probe
					p.inject(t, dsts[rng.Intn(len(dsts))], hops[rng.Intn(len(hops))], seq)
					seq++
				case r == 7 && len(fresh) > 0: // delegate a fresh /64
					pf := fresh[0]
					fresh = fresh[1:]
					for _, n := range []*testNet{p.fast, p.slow} {
						down := n.isp.AddIface(ipv6.SLAAC(pf, 1), "isp:extra")
						if err := n.isp.Delegate(pf, down); err != nil {
							t.Fatal(err)
						}
					}
				case r == 8: // reroute scan-net return traffic (a no-op route re-insert)
					for _, n := range []*testNet{p.fast, p.slow} {
						n.core.AddRoute(ipv6.MustParsePrefix("2001:beef::/64"), n.core.ifs[0])
					}
				default: // discard valid cache state on the fast net only
					p.fast.eng.InvalidateFlows()
				}
				p.compare(t, fmt.Sprintf("op %d", op))
			}
			if hits := p.fast.eng.Counters().FastPathHits; hits == 0 {
				t.Error("property run never hit the flow cache; the test lost its teeth")
			}
		})
	}
}

// TestFlowCacheFaultReplayParity drives the mirror under a
// deterministic fault layer (drop every 3rd transmission, duplicate
// every 7th) — replay must consume fault decisions in exactly the
// interpreted order for the two nets to stay in lockstep.
func TestFlowCacheFaultReplayParity(t *testing.T) {
	p := buildMirror(t, CPEBehavior{}, ErrorPolicy{})
	mkFault := func() FaultFunc {
		n := 0
		return func(from *Iface, pkt []byte) FaultOutcome {
			n++
			switch {
			case n%3 == 0:
				return FaultOutcome{Drop: true}
			case n%7 == 0:
				return FaultOutcome{Deliveries: []int{0, 0}}
			}
			return FaultOutcome{}
		}
	}
	p.fast.eng.SetFault(mkFault())
	p.slow.eng.SetFault(mkFault())
	dsts := []ipv6.Addr{wanAddr, lanHost, ipv6.MustParseAddr("2001:db8:aaaa:bbbb::1")}
	for i := 0; i < 60; i++ {
		p.inject(t, dsts[i%len(dsts)], 64, uint16(i+1))
		p.compare(t, fmt.Sprintf("faulty probe %d", i))
	}
	if p.fast.eng.Counters().FastPathHits == 0 {
		t.Error("fault-layer replays never hit the cache")
	}
}

// TestFlowCacheLoopFusionParity pins the routing-loop bounce: a probe
// into a vulnerable delegation ping-pongs ~253 times on the access
// link. The fused replay must reproduce the interpreted amplification
// byte-for-byte while collapsing the crossings into far fewer events,
// and a later probe arriving with a different hop limit than the
// compiled entry recorded must fall back, recompile, and still match.
func TestFlowCacheLoopFusionParity(t *testing.T) {
	p := buildMirror(t, CPEBehavior{VulnLAN: true}, ErrorPolicy{})
	notUsed := ipv6.MustParseAddr("2001:db8:4321:8769::77")

	p.inject(t, notUsed, 255, 1) // compiles the loop
	p.compare(t, "cold loop")
	p.inject(t, notUsed, 255, 2) // replays it fused
	p.compare(t, "warm loop")
	if got := p.fast.cpeLink.TotalPackets(); got < 400 {
		t.Errorf("access link carried %d packets across two loops, want ~506", got)
	}
	fastEvents := p.fast.eng.Counters().Events
	slowEvents := p.slow.eng.Counters().Events
	if fastEvents*10 > slowEvents {
		t.Errorf("loop fusion saved too little: %d events fastpath vs %d interpreted",
			fastEvents, slowEvents)
	}

	// hlIn mismatch: the entry recorded arrival hop limits for 255;
	// these probes must not replay it blindly.
	for i, hl := range []uint8{250, 64, 5, 255} {
		p.inject(t, notUsed, hl, uint16(10+i))
		p.compare(t, fmt.Sprintf("hop limit %d", hl))
	}
}

// TestFlowCacheWideEntrySharing pins region-width compilation: two
// destinations in different /64s of one unassigned delegation cell
// share a compiled entry (the second probe is a cache hit), while the
// ISP's own interface address — which sits inside a compilable region —
// keeps answering as itself rather than inheriting the region's fate.
func TestFlowCacheWideEntrySharing(t *testing.T) {
	p := buildMirror(t, CPEBehavior{}, ErrorPolicy{})

	// The finest delegation table in buildTestNet is /64-grained, so the
	// uniform cell around unassigned 2001:db8:aaaa:bbbb::/64 is exactly
	// one /64: probing two IIDs of it shares the entry; probing the
	// adjacent /64 compiles its own.
	a1 := ipv6.MustParseAddr("2001:db8:aaaa:bbbb::1")
	a2 := ipv6.MustParseAddr("2001:db8:aaaa:bbbb::2")
	p.inject(t, a1, 64, 1)
	p.compare(t, "cold region")
	before := p.fast.eng.Counters()
	p.inject(t, a2, 64, 2)
	p.compare(t, "warm region")
	after := p.fast.eng.Counters()
	if after.FastPathHits <= before.FastPathHits {
		t.Errorf("second probe of the region missed: hits %d -> %d (misses %d -> %d)",
			before.FastPathHits, after.FastPathHits, before.FastPathMisses, after.FastPathMisses)
	}

	// The provider-side WAN interface address lies inside the delegated
	// WAN /64 whose other addresses forward to the CPE: the compiled
	// region must exclude it (excl/shadow machinery), in both orders.
	local := ipv6.MustParseAddr("2001:db8:1234:5678::1")
	other := ipv6.SLAAC(wanPrefix, 0xdeadbeef)
	p.inject(t, other, 64, 3) // compile the forwarding region first
	p.compare(t, "wan region")
	p.inject(t, local, 64, 4) // then the excluded local address
	p.compare(t, "wan local addr")
	p.inject(t, local, 64, 5) // warm local
	p.inject(t, other, 64, 6) // warm region
	p.compare(t, "wan interleaved")
}

// TestFlowCacheInvalidationCounter pins the observability contract:
// every mutation class that must discard compiled flows also ticks
// Counters().FastPathInvalidations.
func TestFlowCacheInvalidationCounter(t *testing.T) {
	n := buildTestNet(t, CPEBehavior{}, ErrorPolicy{})
	last := n.eng.Counters().FastPathInvalidations
	expect := func(tag string) {
		t.Helper()
		now := n.eng.Counters().FastPathInvalidations
		if now <= last {
			t.Errorf("%s did not tick FastPathInvalidations (still %d)", tag, now)
		}
		last = now
	}
	if err := n.isp.Delegate(ipv6.MustParsePrefix("2001:db8:7777::/64"),
		n.isp.AddIface(ipv6.MustParseAddr("2001:db8:7777::1"), "isp:x")); err != nil {
		t.Fatal(err)
	}
	expect("Delegate")
	n.core.AddRoute(ipv6.MustParsePrefix("2001:dead::/64"), n.core.ifs[0])
	expect("AddRoute")
	n.eng.SetFault(func(*Iface, []byte) FaultOutcome { return FaultOutcome{} })
	expect("SetFault")
	n.eng.InvalidateFlows()
	expect("InvalidateFlows")
	n.eng.SetFastPath(false)
	expect("SetFastPath(false)")
}

// TestFlowCacheConcurrentInject hammers one engine from several
// goroutines with interleaved InvalidateFlows calls. The engine lock
// serializes them; the test exists for the -race runner, which CI
// points at the FlowCache tests explicitly.
func TestFlowCacheConcurrentInject(t *testing.T) {
	n := buildTestNet(t, CPEBehavior{}, ErrorPolicy{})
	dsts := []ipv6.Addr{
		wanAddr, lanHost,
		ipv6.MustParseAddr("2001:db8:aaaa:bbbb::1"),
		ipv6.MustParseAddr("2001:db8:cccc::99"),
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				dst := dsts[(g+i)%len(dsts)]
				pkt, err := wire.BuildEchoRequest(scannerAddr, dst, 64, uint16(g+1), uint16(i+1), nil)
				if err != nil {
					t.Error(err)
					return
				}
				n.eng.Inject(n.scanner.Iface(), pkt)
				if i%50 == 25 {
					n.eng.InvalidateFlows()
				}
			}
		}(g)
	}
	wg.Wait()
	c := n.eng.Counters()
	if c.FastPathHits == 0 {
		t.Error("concurrent run never hit the flow cache")
	}
	if got := uint64(n.scanner.Pending()); got == 0 {
		t.Error("no replies delivered")
	}
}

// TestFlowCacheConcurrentInjectBatch hammers one engine with
// concurrent InjectBatch calls of mixed sizes (1 up to a full resolve
// run) interleaved with InvalidateFlows, for the -race runner: the
// batched resolve/replay passes and their engine-inline scratch must
// stay entirely under the engine lock.
func TestFlowCacheConcurrentInjectBatch(t *testing.T) {
	n := buildTestNet(t, CPEBehavior{}, ErrorPolicy{})
	dsts := []ipv6.Addr{
		wanAddr, lanHost,
		ipv6.MustParseAddr("2001:db8:aaaa:bbbb::1"),
		ipv6.MustParseAddr("2001:db8:cccc::99"),
	}
	sizes := []int{1, 3, 17, 64, InjectRunLen}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				size := sizes[(g+i)%len(sizes)]
				batch := make([][]byte, 0, size)
				for j := 0; j < size; j++ {
					dst := dsts[(g+i+j)%len(dsts)]
					pkt, err := wire.BuildEchoRequest(scannerAddr, dst, 64, uint16(g+1), uint16(i*InjectRunLen+j+1), nil)
					if err != nil {
						t.Error(err)
						return
					}
					batch = append(batch, pkt)
				}
				n.eng.InjectBatch(n.scanner.Iface(), batch)
				if i%13 == 7 {
					n.eng.InvalidateFlows()
				}
			}
		}(g)
	}
	wg.Wait()
	c := n.eng.Counters()
	if c.FastPathBatched == 0 {
		t.Error("concurrent batches never took the batched replay path")
	}
	if got := uint64(n.scanner.Pending()); got == 0 {
		t.Error("no replies delivered")
	}
}
