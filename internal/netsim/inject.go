package netsim

import (
	"encoding/binary"

	"repro/internal/wire"
)

// Batched fast-path injection: InjectBatch resolves a whole send burst
// against the flow cache in one pass before replaying anything. The
// per-packet path serializes one cache-miss chain per probe (tag line,
// hot header, cold tail, back to back); the resolve pass below issues
// those loads for up to injRun probes in a tight loop, so the misses
// overlap in the memory system instead of queuing behind each other.
// The replay pass then charges link stats, transit counters and engine
// totals arithmetically — once per distinct flow entry in the run,
// multiplied by how many probes resolved to it — and builds replies in
// strict probe order, with totals, ordering, and edge delivery order
// provably identical to k per-packet replays. Scanners randomize probe
// order, so aggregation keys on the distinct entries of the whole run
// rather than on consecutive-probe groups; a run that touches e
// entries pays the pointer-chasing stat walk e times, not k.
//
// Only the plain case qualifies: warm entries whose path is lossless,
// a loss-free injection link, no fault layer, no tap, empty queue.
// Anything else — cold flows, lossy links, entryNode/entryNeg kinds,
// ICMP-error probes, guard mismatches — ends the run and takes the
// per-packet path, which preserves interpreted fault-RNG order exactly.

// injRun caps how many probes one batched pass resolves, sizing the
// engine-inline scratch below (no per-batch allocation).
const injRun = 256

// InjectRunLen is injRun for callers outside the package: the batch
// size above which one InjectBatch call spans multiple locked resolve
// runs. The differential oracles use it as a boundary batch size.
const InjectRunLen = injRun

// injScratch is the engine's batched-injection scratch state. slot maps
// each resolved probe to an index into the distinct-entry arrays;
// dslot/dcount/dbytes describe the run's distinct flow entries and
// dm/drbytes accumulate their reply counts and bytes as the gate
// decides, in probe order, which probes draw errors.
type injScratch struct {
	slot    [injRun]int32  // per-probe distinct-entry index
	dslot   [injRun]int32  // distinct index -> flow-table slot
	dcount  [injRun]uint32 // probes resolved to this entry
	dbytes  [injRun]uint64 // their summed lengths
	dm      [injRun]uint32 // replies the gate granted
	drbytes [injRun]uint64 // their summed lengths
	out     [][]byte       // delivery batch accumulated per edge
	sink    uint64         // defeats dead-code elimination of warm loads
}

// injectFastLocked replays a prefix of pkts through the flow cache as a
// batch. Returns packets consumed and events charged; 0 packets means
// the caller must handle pkts[0] on the per-packet path.
func (e *Engine) injectFastLocked(from *Iface, pkts [][]byte) (int, int) {
	if !e.fp.enabled || e.fault != nil || e.tap != nil || e.queuedLocked() != 0 {
		return 0, 0
	}
	l := from.link
	if l == nil || l.loss != 0 {
		return 0, 0
	}
	to := l.ends[1-from.end]
	ifid := to.fpID
	if ifid == 0 {
		return 0, 0
	}
	fp := &e.fp

	n := len(pkts)
	if n > injRun {
		n = injRun
	}

	// Warm pass: touch each probe's dominant-width tag, hot and lead
	// cold lines before the dependent lookups below. These loads have no
	// dependencies between iterations, so their cache misses overlap;
	// the resolve pass then runs against warm lines. The xor-sum into
	// the scratch sink keeps the compiler from deleting the loads.
	if fp.nWidths > 0 && fp.tags != nil {
		w := fp.widths[0]
		mask := fpMask(w)
		var warm uint64
		for i := 0; i < n; i++ {
			pkt := pkts[i]
			if len(pkt) < wire.HeaderLen {
				break
			}
			hi := binary.BigEndian.Uint64(pkt[24:32])
			j := slotHash(ifid, w, hi&mask) & fp.mask
			warm ^= fp.tags[j] + fp.hot[j].gen + fp.cold[j].replySrc.Uint128().Hi
		}
		e.inj.sink = warm
	}

	// Resolve pass: per-probe flow lookup plus every guard the plain
	// replay would check, stopping at the first probe the batch cannot
	// replay exactly. Each resolved probe is folded into the run's
	// distinct-entry table as it lands.
	k, d := 0, 0
	var sumAll uint64
resolve:
	for k < n {
		pkt := pkts[k]
		if len(pkt) < wire.HeaderLen || pkt[0]>>4 != 6 ||
			len(pkt)-wire.HeaderLen < int(binary.BigEndian.Uint16(pkt[4:6])) {
			break
		}
		hi := binary.BigEndian.Uint64(pkt[24:32])
		lo := binary.BigEndian.Uint64(pkt[32:40])
		j := fp.lookup(ifid, hi, lo)
		if j < 0 {
			break
		}
		h := &fp.hot[j]
		if !h.lossless() {
			break
		}
		switch h.kind {
		case entryEdge:
			// The probe must survive nf hop-limit decrements.
			if int(pkt[7]) < int(h.nf)+1 {
				break resolve
			}
		case entryError:
			// nf decrements, the terminal's pre-error decrement, and
			// the gate's no-errors-about-errors refund must not differ
			// from the compiled decision.
			if int(pkt[7]) < int(h.nf)+2 || isICMPError(pkt) {
				break resolve
			}
			c := &fp.cold[j]
			if binary.BigEndian.Uint64(pkt[8:16]) != c.replySrc.Uint128().Hi ||
				binary.BigEndian.Uint64(pkt[16:24]) != c.replySrc.Uint128().Lo {
				break resolve
			}
		case entryLoop:
			if pkt[7] != h.hlIn || isICMPError(pkt) {
				break resolve
			}
			c := &fp.cold[j]
			if binary.BigEndian.Uint64(pkt[8:16]) != c.replySrc.Uint128().Hi ||
				binary.BigEndian.Uint64(pkt[16:24]) != c.replySrc.Uint128().Lo {
				break resolve
			}
		default: // entryNeg, entryNode: interpreted continuation
			break resolve
		}
		di := -1
		if k > 0 && e.inj.dslot[e.inj.slot[k-1]] == int32(j) {
			di = int(e.inj.slot[k-1])
		} else {
			for t := 0; t < d; t++ {
				if e.inj.dslot[t] == int32(j) {
					di = t
					break
				}
			}
		}
		if di < 0 {
			di = d
			d++
			e.inj.dslot[di] = int32(j)
			e.inj.dcount[di] = 0
			e.inj.dbytes[di] = 0
			e.inj.dm[di] = 0
			e.inj.drbytes[di] = 0
		}
		e.inj.dcount[di]++
		e.inj.dbytes[di] += uint64(len(pkt))
		sumAll += uint64(len(pkt))
		e.inj.slot[k] = int32(di)
		k++
	}
	if k == 0 {
		return 0, 0
	}
	e.fpReplayRun(from, pkts[:k], d, sumAll)
	e.steps += uint64(k)
	fp.hits += uint64(k)
	fp.batched += uint64(k)
	return k, k
}

// fpReplayRun replays one resolved run of probes, all guards
// pre-checked. Charging is arithmetic — once per distinct flow entry,
// scaled by its probe count — but sums to exactly what k sequential
// per-probe replays would charge; the error gate is consumed in probe
// order; and deliveries reach each edge in probe order, batched into as
// few handoffs as the run's edge sequence allows.
func (e *Engine) fpReplayRun(from *Iface, pkts [][]byte, d int, sumAll uint64) {
	fp := &e.fp
	k := len(pkts)

	// Warm the distinct entries' replay state — the error gate, both ends
	// of the cold hop lists, and the leaf hops' link-stat blocks (the
	// spine links repeat across entries, but each entry's last hop is its
	// own device link) — in one dependency-free loop, so those lines miss
	// concurrently here instead of serializing inside the charging loops
	// below.
	var warm uint64
	for di := 0; di < d; di++ {
		j := int(e.inj.dslot[di])
		h := &fp.hot[j]
		c := &fp.cold[j]
		if g := h.gate; g != nil {
			warm += uint64(g.generated)
		}
		if h.nf > 0 {
			warm += c.fwd[0].st.Packets + c.fwd[h.nf-1].st.Packets
		}
		if h.nr > 0 {
			warm += c.rev[0].st.Packets + c.rev[h.nr-1].st.Packets
		}
	}
	e.inj.sink += warm

	// The injection crossings: the batch enters from's link exactly as
	// k enqueued transmissions would.
	st := &from.link.stats[from.end]
	st.Packets += uint64(k)
	st.Bytes += sumAll
	crossings := uint64(k)
	bytes := sumAll

	// Forward-path charging, once per distinct entry.
	for di := 0; di < d; di++ {
		j := int(e.inj.dslot[di])
		h := &fp.hot[j]
		c := &fp.cold[j]
		cnt := uint64(e.inj.dcount[di])
		cb := e.inj.dbytes[di]
		switch h.kind {
		case entryEdge, entryError:
			for i := uint8(0); i < h.nf; i++ {
				hop := &c.fwd[i]
				if hop.fwd != nil {
					*hop.fwd += cnt
				}
				lst := hop.st
				lst.Packets += cnt
				lst.Bytes += cb
			}
			crossings += cnt * uint64(h.nf)
			bytes += cb * uint64(h.nf)
		case entryLoop:
			cross := int(h.loopCross)
			p, ll := int(h.loopStart), int(h.loopLen)
			for i := 0; i < int(h.nf); i++ {
				hc := loopHopCount(i, p, ll, cross)
				if hc == 0 {
					continue
				}
				hop := &c.fwd[i]
				if hop.fwd != nil {
					*hop.fwd += hc * cnt
				}
				lst := hop.st
				lst.Packets += hc * cnt
				lst.Bytes += hc * cb
			}
			crossings += cnt * uint64(cross)
			bytes += cb * uint64(cross)
		}
	}

	// Delivery pass, strict probe order. Probes destined at an edge are
	// copied in (the edge retains its buffers); terminal-error probes
	// draw the gate in order — allowN per same-entry stretch — and
	// build replies straight from the caller's packets, no intermediate
	// copy. Deliveries accumulate into one slice flushed each time the
	// target edge changes (once per run when a single vantage scans).
	out := e.inj.out[:0]
	var cur *Edge
	for i := 0; i < k; {
		di := int(e.inj.slot[i])
		g := i + 1
		for g < k && int(e.inj.slot[g]) == di {
			g++
		}
		j := int(e.inj.dslot[di])
		h := &fp.hot[j]
		c := &fp.cold[j]
		if h.kind == entryEdge {
			ed := h.term.node.(*Edge)
			if cur != ed && len(out) > 0 {
				cur.handleBatch(out)
				out = out[:0]
			}
			cur = ed
			for _, pkt := range pkts[i:g] {
				cp := e.getBufLocked(len(pkt))
				copy(cp, pkt)
				cp[7] -= h.nf
				out = append(out, cp)
			}
			if e.ftr != nil {
				e.traceRunStretch(from, h, c, pkts[i:g], 0)
			}
			i = g
			continue
		}
		m := h.gate.allowN(g - i)
		if e.ftr != nil {
			// Synthesize the stretch's crossings — ungranted probes still
			// crossed every forward link before dying at the gate.
			e.traceRunStretch(from, h, c, pkts[i:g], m)
		}
		if m > 0 {
			ed := c.edge.node.(*Edge)
			if cur != ed && len(out) > 0 {
				cur.handleBatch(out)
				out = out[:0]
			}
			cur = ed
			var rb uint64
			for _, pkt := range pkts[i : i+m] {
				var hl uint8
				if h.kind == entryError {
					hl = pkt[7] - (h.nf + 1)
				} else {
					hl = h.hlIn - uint8(h.loopCross)
				}
				r := e.fpBuildErrorFrom(h, c, pkt, hl)
				rb += uint64(len(r))
				out = append(out, r)
			}
			e.inj.dm[di] += uint32(m)
			e.inj.drbytes[di] += rb
		}
		i = g
	}
	if len(out) > 0 {
		cur.handleBatch(out)
	}
	e.inj.out = out[:0]

	// Reverse-path charging, once per distinct entry that drew replies.
	for di := 0; di < d; di++ {
		m := uint64(e.inj.dm[di])
		if m == 0 {
			continue
		}
		j := int(e.inj.dslot[di])
		h := &fp.hot[j]
		c := &fp.cold[j]
		rb := e.inj.drbytes[di]
		for i := uint8(0); i < h.nr; i++ {
			hop := &c.rev[i]
			// rev[0] is the terminal's own emission, not a transit hop.
			if i > 0 && hop.fwd != nil {
				*hop.fwd += m
			}
			lst := hop.st
			lst.Packets += m
			lst.Bytes += rb
		}
		crossings += m * uint64(h.nr)
		bytes += rb * uint64(h.nr)
	}

	e.txPackets += crossings
	e.txBytes += bytes
	e.seq += crossings
}

// fpBuildErrorFrom builds the terminal's ICMPv6 error for an invoking
// probe without mutating or copying it: the quote is spliced from the
// caller's packet with the hop-limit byte patched to hl (what the
// terminal saw), its checksum contribution adjusted in place, and the
// reply's own hop limit pre-decremented for the nr-1 reverse forwarding
// crossings. Falls back to the template-capturing builder on a patched
// scratch copy until the entry has a template for this probe length.
func (e *Engine) fpBuildErrorFrom(ent *flowHot, cld *flowCold, pkt []byte, hl uint8) []byte {
	hlOut := uint8(wire.MaxHopLimit)
	if ent.nr > 1 {
		hlOut -= ent.nr - 1
	}
	const invOff = fpTmplLen
	n := len(pkt)
	if ent.hasTmpl() && int(ent.probeLen) == n {
		out := e.getBufLocked(invOff + n)
		copy(out[:invOff], cld.tmpl[:])
		copy(out[invOff:], pkt)
		out[invOff+7] = hl
		// The quoted hop limit is the low byte of an aligned 16-bit
		// word, so the patch shifts the sum by exactly its difference.
		cs := wire.FoldSum(cld.tmplSum + wire.SumWords(pkt) - uint64(pkt[7]) + uint64(hl))
		binary.BigEndian.PutUint16(out[invOff-6:invOff-4], cs)
		out[7] = hlOut
		return out
	}
	cp := e.getBufLocked(n)
	copy(cp, pkt)
	cp[7] = hl
	out := e.fpBuildError(ent, cld, cp)
	e.putBufLocked(cp)
	out[7] = hlOut
	return out
}
