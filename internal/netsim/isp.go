package netsim

import (
	"fmt"

	"repro/internal/ipv6"
	"repro/internal/wire"
)

// ISPRouter is the provider-edge router of one ISP block. Instead of a
// general LPM table it holds per-length delegation tables (an exact-match
// table per delegated prefix length), which is both how provider BNGs
// are provisioned and memory-proportional to the number of subscribers.
type ISPRouter struct {
	name     string
	block    ipv6.Prefix
	upstream *Iface
	ifs      []*Iface
	addrs    map[ipv6.Addr]struct{}
	// addrList holds the distinct interface addresses. Provider edges
	// share one provider-side address across all subscriber links
	// (topo's downAddr), so this stays tiny even with thousands of
	// interfaces — isLocal scans it linearly instead of hashing a
	// 16-byte map key per transit packet. isLocal falls back to the
	// map if a topology ever gives every interface its own address.
	addrList []ipv6.Addr
	delegs   []*delegTable
	gate     errorGate
	sc       emitScratch

	// CountForwarded tallies transit packets for amplification
	// measurements.
	CountForwarded uint64
}

var _ Node = (*ISPRouter)(nil)

// delegTable maps sub-prefix indices (at one prefix length within the
// block) to subscriber-facing interfaces. Provisioned indices are small
// and dense (subscribers are assigned consecutive sub-prefixes), so
// indices under denseCap live in a direct-index slice — the transit hot
// path then costs one bounds check instead of a hash probe per packet —
// with the map kept for sparse outliers.
type delegTable struct {
	subLen  int
	dense   []*Iface
	entries map[uint64]*Iface
}

// denseCap bounds the direct-index slice (64k entries, 512 KiB of
// pointers at worst); delegation indices past it fall back to the map.
const denseCap = 1 << 16

// set records one delegation, keeping the dense/map invariant: indices
// under denseCap are stored in both (the slice answers lookups, the map
// keeps DelegationCount trivial), larger ones in the map alone.
func (t *delegTable) set(idx uint64, out *Iface) {
	t.entries[idx] = out
	if idx < denseCap {
		for uint64(len(t.dense)) <= idx {
			t.dense = append(t.dense, nil)
		}
		t.dense[idx] = out
	}
}

// get resolves one sub-prefix index.
func (t *delegTable) get(idx uint64) (*Iface, bool) {
	if idx < uint64(len(t.dense)) {
		out := t.dense[idx]
		return out, out != nil
	}
	if idx < denseCap {
		// Under the dense bound but past the slice: never delegated.
		return nil, false
	}
	out, ok := t.entries[idx]
	return out, ok
}

// NewISPRouter creates the edge router for the given ISP block.
func NewISPRouter(name string, block ipv6.Prefix, policy ErrorPolicy) *ISPRouter {
	return &ISPRouter{
		name:  name,
		block: block,
		addrs: make(map[ipv6.Addr]struct{}),
		gate:  errorGate{policy: policy},
	}
}

// Name implements Node.
func (r *ISPRouter) Name() string { return r.name }

// Block returns the ISP's address block.
func (r *ISPRouter) Block() ipv6.Prefix { return r.block }

// AddIface registers a new interface with the given address.
func (r *ISPRouter) AddIface(addr ipv6.Addr, name string) *Iface {
	ifc := NewIface(r, addr, name)
	r.ifs = append(r.ifs, ifc)
	if _, ok := r.addrs[addr]; !ok {
		r.addrs[addr] = struct{}{}
		r.addrList = append(r.addrList, addr)
	}
	return ifc
}

// SetUpstream nominates the interface toward the Internet core; traffic
// not covered by the block or delegations leaves through it.
func (r *ISPRouter) SetUpstream(ifc *Iface) { r.upstream = ifc }

// Delegate routes the sub-prefix p of the block to the subscriber behind
// out. All delegations of the same length share one exact-match table.
func (r *ISPRouter) Delegate(p ipv6.Prefix, out *Iface) error {
	if !r.block.Overlaps(p) || p.Bits() <= r.block.Bits() {
		return fmt.Errorf("netsim: delegation %s outside block %s", p, r.block)
	}
	idx, err := r.block.SubIndex(p.Addr(), p.Bits())
	if err != nil {
		return err
	}
	if idx.Hi != 0 {
		return fmt.Errorf("netsim: delegation index for %s exceeds 64 bits", p)
	}
	for _, t := range r.delegs {
		if t.subLen == p.Bits() {
			t.set(idx.Lo, out)
			return nil
		}
	}
	t := &delegTable{subLen: p.Bits(), entries: map[uint64]*Iface{}}
	t.set(idx.Lo, out)
	// Keep tables sorted longest-first so more-specific delegations win.
	pos := 0
	for pos < len(r.delegs) && r.delegs[pos].subLen > t.subLen {
		pos++
	}
	r.delegs = append(r.delegs, nil)
	copy(r.delegs[pos+1:], r.delegs[pos:])
	r.delegs[pos] = t
	return nil
}

// lookup resolves dst against the delegation tables.
func (r *ISPRouter) lookup(dst ipv6.Addr) (*Iface, bool) {
	for _, t := range r.delegs {
		idx, ok := r.block.SubIndexIn(dst, t.subLen)
		if !ok {
			return nil, false // not in block at all
		}
		if idx.Hi != 0 {
			continue
		}
		if out, ok := t.get(idx.Lo); ok {
			return out, true
		}
	}
	return nil, false
}

// isLocal reports whether dst is one of the router's interface
// addresses. The distinct-address list is normally a couple of entries
// (see addrList), so a linear scan beats hashing; degenerate
// topologies with many distinct addresses use the map.
func (r *ISPRouter) isLocal(dst ipv6.Addr) bool {
	if len(r.addrList) <= 8 {
		for _, a := range r.addrList {
			if a == dst {
				return true
			}
		}
		return false
	}
	_, ok := r.addrs[dst]
	return ok
}

// Handle implements Node: RFC 8200 forwarding with RFC 4443 errors. A
// destination inside the block but matching no delegation draws an
// address-unreachable error — exactly the mechanism the paper's
// discovery strategy exploits at the periphery, here occurring one hop
// earlier for unassigned space.
func (r *ISPRouter) Handle(in *Iface, pkt []byte) []Emission {
	dst, ok := wire.ForwardDst(pkt)
	if !ok {
		return nil
	}
	if r.isLocal(dst) {
		return respondLocalEcho(&r.sc, in, dst, pkt)
	}
	if !decrementHopLimit(pkt) {
		return r.emitError(in, pkt, wire.ICMPTimeExceeded, wire.TimeExceedHopLimit)
	}
	if out, ok := r.lookup(dst); ok {
		r.CountForwarded++
		return r.sc.emit(out, pkt)
	}
	if r.block.Contains(dst) {
		// Unassigned space within the block.
		return r.emitError(in, pkt, wire.ICMPDestUnreach, wire.UnreachNoRoute)
	}
	if r.upstream != nil && in != r.upstream {
		r.CountForwarded++
		return r.sc.emit(r.upstream, pkt)
	}
	return r.emitError(in, pkt, wire.ICMPDestUnreach, wire.UnreachNoRoute)
}

func (r *ISPRouter) emitError(in *Iface, invoking []byte, typ, code uint8) []Emission {
	if !r.gate.allow() {
		return nil
	}
	out := icmpError(in, in.addr, invoking, typ, code)
	if out == nil {
		r.gate.generated--
		return nil
	}
	return r.sc.emit(in, out)
}

// DelegationCount returns the number of installed delegations (for
// diagnostics and tests).
func (r *ISPRouter) DelegationCount() int {
	n := 0
	for _, t := range r.delegs {
		n += len(t.entries)
	}
	return n
}
