package netsim

import (
	"fmt"

	"repro/internal/ipv6"
	"repro/internal/wire"
)

// ISPRouter is the provider-edge router of one ISP block. Instead of a
// general LPM table it holds per-length delegation tables (an exact-match
// table per delegated prefix length), which is both how provider BNGs
// are provisioned and memory-proportional to the number of subscribers.
type ISPRouter struct {
	name     string
	block    ipv6.Prefix
	upstream *Iface
	ifs      []*Iface
	addrs    map[ipv6.Addr]struct{}
	delegs   []*delegTable
	gate     errorGate

	// CountForwarded tallies transit packets for amplification
	// measurements.
	CountForwarded uint64
}

var _ Node = (*ISPRouter)(nil)

// delegTable maps sub-prefix indices (at one prefix length within the
// block) to subscriber-facing interfaces.
type delegTable struct {
	subLen  int
	entries map[uint64]*Iface
}

// NewISPRouter creates the edge router for the given ISP block.
func NewISPRouter(name string, block ipv6.Prefix, policy ErrorPolicy) *ISPRouter {
	return &ISPRouter{
		name:  name,
		block: block,
		addrs: make(map[ipv6.Addr]struct{}),
		gate:  errorGate{policy: policy},
	}
}

// Name implements Node.
func (r *ISPRouter) Name() string { return r.name }

// Block returns the ISP's address block.
func (r *ISPRouter) Block() ipv6.Prefix { return r.block }

// AddIface registers a new interface with the given address.
func (r *ISPRouter) AddIface(addr ipv6.Addr, name string) *Iface {
	ifc := NewIface(r, addr, name)
	r.ifs = append(r.ifs, ifc)
	r.addrs[addr] = struct{}{}
	return ifc
}

// SetUpstream nominates the interface toward the Internet core; traffic
// not covered by the block or delegations leaves through it.
func (r *ISPRouter) SetUpstream(ifc *Iface) { r.upstream = ifc }

// Delegate routes the sub-prefix p of the block to the subscriber behind
// out. All delegations of the same length share one exact-match table.
func (r *ISPRouter) Delegate(p ipv6.Prefix, out *Iface) error {
	if !r.block.Overlaps(p) || p.Bits() <= r.block.Bits() {
		return fmt.Errorf("netsim: delegation %s outside block %s", p, r.block)
	}
	idx, err := r.block.SubIndex(p.Addr(), p.Bits())
	if err != nil {
		return err
	}
	if idx.Hi != 0 {
		return fmt.Errorf("netsim: delegation index for %s exceeds 64 bits", p)
	}
	for _, t := range r.delegs {
		if t.subLen == p.Bits() {
			t.entries[idx.Lo] = out
			return nil
		}
	}
	t := &delegTable{subLen: p.Bits(), entries: map[uint64]*Iface{idx.Lo: out}}
	// Keep tables sorted longest-first so more-specific delegations win.
	pos := 0
	for pos < len(r.delegs) && r.delegs[pos].subLen > t.subLen {
		pos++
	}
	r.delegs = append(r.delegs, nil)
	copy(r.delegs[pos+1:], r.delegs[pos:])
	r.delegs[pos] = t
	return nil
}

// lookup resolves dst against the delegation tables.
func (r *ISPRouter) lookup(dst ipv6.Addr) (*Iface, bool) {
	for _, t := range r.delegs {
		idx, err := r.block.SubIndex(dst, t.subLen)
		if err != nil {
			return nil, false // not in block at all
		}
		if idx.Hi != 0 {
			continue
		}
		if out, ok := t.entries[idx.Lo]; ok {
			return out, true
		}
	}
	return nil, false
}

// isLocal reports whether dst is one of the router's interface addresses.
func (r *ISPRouter) isLocal(dst ipv6.Addr) bool {
	_, ok := r.addrs[dst]
	return ok
}

// Handle implements Node: RFC 8200 forwarding with RFC 4443 errors. A
// destination inside the block but matching no delegation draws an
// address-unreachable error — exactly the mechanism the paper's
// discovery strategy exploits at the periphery, here occurring one hop
// earlier for unassigned space.
func (r *ISPRouter) Handle(in *Iface, pkt []byte) []Emission {
	hdr, _, err := wire.ParseIPv6(pkt)
	if err != nil {
		return nil
	}
	if r.isLocal(hdr.Dst) {
		return respondLocalEcho(in, hdr.Dst, pkt)
	}
	if !decrementHopLimit(pkt) {
		return r.emitError(in, pkt, wire.ICMPTimeExceeded, wire.TimeExceedHopLimit)
	}
	if out, ok := r.lookup(hdr.Dst); ok {
		r.CountForwarded++
		return []Emission{{Out: out, Pkt: pkt}}
	}
	if r.block.Contains(hdr.Dst) {
		// Unassigned space within the block.
		return r.emitError(in, pkt, wire.ICMPDestUnreach, wire.UnreachNoRoute)
	}
	if r.upstream != nil && in != r.upstream {
		r.CountForwarded++
		return []Emission{{Out: r.upstream, Pkt: pkt}}
	}
	return r.emitError(in, pkt, wire.ICMPDestUnreach, wire.UnreachNoRoute)
}

func (r *ISPRouter) emitError(in *Iface, invoking []byte, typ, code uint8) []Emission {
	if !r.gate.allow() {
		return nil
	}
	out := icmpError(in.addr, invoking, typ, code)
	if out == nil {
		r.gate.generated--
		return nil
	}
	return []Emission{{Out: in, Pkt: out}}
}

// DelegationCount returns the number of installed delegations (for
// diagnostics and tests).
func (r *ISPRouter) DelegationCount() int {
	n := 0
	for _, t := range r.delegs {
		n += len(t.entries)
	}
	return n
}
