package netsim

import (
	"fmt"
	"math/bits"

	"repro/internal/ipv6"
	"repro/internal/wire"
)

// ISPRouter is the provider-edge router of one ISP block. Instead of a
// general LPM table it holds per-length delegation tables (an exact-match
// table per delegated prefix length), which is both how provider BNGs
// are provisioned and memory-proportional to the number of subscribers.
type ISPRouter struct {
	name     string
	block    ipv6.Prefix
	upstream *Iface
	ifs      []*Iface
	addrs    map[ipv6.Addr]struct{}
	// addrList holds the distinct interface addresses. Provider edges
	// share one provider-side address across all subscriber links
	// (topo's downAddr), so this stays tiny even with thousands of
	// interfaces — isLocal scans it linearly instead of hashing a
	// 16-byte map key per transit packet. isLocal falls back to the
	// map if a topology ever gives every interface its own address.
	addrList []ipv6.Addr
	delegs   []*delegTable
	gate     errorGate
	sc       emitScratch

	// CountForwarded tallies transit packets for amplification
	// measurements.
	CountForwarded uint64
}

var _ Node = (*ISPRouter)(nil)

// delegTable maps sub-prefix indices (at one prefix length within the
// block) to subscriber-facing interfaces. Provisioned indices are small
// and dense (subscribers are assigned consecutive sub-prefixes), so
// indices under denseCap live in a direct-index slice — the transit hot
// path then costs one bounds check instead of a hash probe per packet —
// with the map kept for sparse outliers.
type delegTable struct {
	subLen  int
	dense   []*Iface
	entries map[uint64]*Iface
}

// denseCap bounds the direct-index slice (64k entries, 512 KiB of
// pointers at worst); delegation indices past it fall back to the map.
const denseCap = 1 << 16

// set records one delegation, keeping the dense/map invariant: indices
// under denseCap are stored in both (the slice answers lookups, the map
// keeps DelegationCount trivial), larger ones in the map alone.
func (t *delegTable) set(idx uint64, out *Iface) {
	t.entries[idx] = out
	if idx < denseCap {
		for uint64(len(t.dense)) <= idx {
			t.dense = append(t.dense, nil)
		}
		t.dense[idx] = out
	}
}

// get resolves one sub-prefix index.
func (t *delegTable) get(idx uint64) (*Iface, bool) {
	if idx < uint64(len(t.dense)) {
		out := t.dense[idx]
		return out, out != nil
	}
	if idx < denseCap {
		// Under the dense bound but past the slice: never delegated.
		return nil, false
	}
	out, ok := t.entries[idx]
	return out, ok
}

// NewISPRouter creates the edge router for the given ISP block.
func NewISPRouter(name string, block ipv6.Prefix, policy ErrorPolicy) *ISPRouter {
	return &ISPRouter{
		name:  name,
		block: block,
		addrs: make(map[ipv6.Addr]struct{}),
		gate:  errorGate{policy: policy},
	}
}

// Name implements Node.
func (r *ISPRouter) Name() string { return r.name }

// Block returns the ISP's address block.
func (r *ISPRouter) Block() ipv6.Prefix { return r.block }

// AddIface registers a new interface with the given address.
func (r *ISPRouter) AddIface(addr ipv6.Addr, name string) *Iface {
	ifc := NewIface(r, addr, name)
	r.ifs = append(r.ifs, ifc)
	if _, ok := r.addrs[addr]; !ok {
		r.addrs[addr] = struct{}{}
		r.addrList = append(r.addrList, addr)
	}
	bumpFlows(r.ifs)
	return ifc
}

// SetUpstream nominates the interface toward the Internet core; traffic
// not covered by the block or delegations leaves through it.
func (r *ISPRouter) SetUpstream(ifc *Iface) {
	r.upstream = ifc
	bumpFlows(r.ifs)
}

// Delegate routes the sub-prefix p of the block to the subscriber behind
// out. All delegations of the same length share one exact-match table.
func (r *ISPRouter) Delegate(p ipv6.Prefix, out *Iface) error {
	if !r.block.Overlaps(p) || p.Bits() <= r.block.Bits() {
		return fmt.Errorf("netsim: delegation %s outside block %s", p, r.block)
	}
	idx, err := r.block.SubIndex(p.Addr(), p.Bits())
	if err != nil {
		return err
	}
	if idx.Hi != 0 {
		return fmt.Errorf("netsim: delegation index for %s exceeds 64 bits", p)
	}
	for _, t := range r.delegs {
		if t.subLen == p.Bits() {
			t.set(idx.Lo, out)
			bumpFlows(r.ifs)
			return nil
		}
	}
	t := &delegTable{subLen: p.Bits(), entries: map[uint64]*Iface{}}
	t.set(idx.Lo, out)
	// Keep tables sorted longest-first so more-specific delegations win.
	pos := 0
	for pos < len(r.delegs) && r.delegs[pos].subLen > t.subLen {
		pos++
	}
	r.delegs = append(r.delegs, nil)
	copy(r.delegs[pos+1:], r.delegs[pos:])
	r.delegs[pos] = t
	bumpFlows(r.ifs)
	return nil
}

// lookup resolves dst against the delegation tables.
func (r *ISPRouter) lookup(dst ipv6.Addr) (*Iface, bool) {
	for _, t := range r.delegs {
		idx, ok := r.block.SubIndexIn(dst, t.subLen)
		if !ok {
			return nil, false // not in block at all
		}
		if idx.Hi != 0 {
			continue
		}
		if out, ok := t.get(idx.Lo); ok {
			return out, true
		}
	}
	return nil, false
}

// isLocal reports whether dst is one of the router's interface
// addresses. The distinct-address list is normally a couple of entries
// (see addrList), so a linear scan beats hashing; degenerate
// topologies with many distinct addresses use the map.
func (r *ISPRouter) isLocal(dst ipv6.Addr) bool {
	if len(r.addrList) <= 8 {
		for _, a := range r.addrList {
			if a == dst {
				return true
			}
		}
		return false
	}
	_, ok := r.addrs[dst]
	return ok
}

// Handle implements Node: RFC 8200 forwarding with RFC 4443 errors. A
// destination inside the block but matching no delegation draws an
// address-unreachable error — exactly the mechanism the paper's
// discovery strategy exploits at the periphery, here occurring one hop
// earlier for unassigned space.
func (r *ISPRouter) Handle(in *Iface, pkt []byte) []Emission {
	dst, ok := wire.ForwardDst(pkt)
	if !ok {
		return nil
	}
	if r.isLocal(dst) {
		return respondLocalEcho(&r.sc, in, dst, pkt)
	}
	if !decrementHopLimit(pkt) {
		return r.emitError(in, pkt, wire.ICMPTimeExceeded, wire.TimeExceedHopLimit)
	}
	if out, ok := r.lookup(dst); ok {
		r.CountForwarded++
		return r.sc.emit(out, pkt)
	}
	if r.block.Contains(dst) {
		// Unassigned space within the block.
		return r.emitError(in, pkt, wire.ICMPDestUnreach, wire.UnreachNoRoute)
	}
	if r.upstream != nil && in != r.upstream {
		r.CountForwarded++
		return r.sc.emit(r.upstream, pkt)
	}
	return r.emitError(in, pkt, wire.ICMPDestUnreach, wire.UnreachNoRoute)
}

// uniformWidth returns the width of the largest region around dst over
// which the forwarding decision is uniform: one cell of the finest
// delegation table (every address of a delegated /60 resolves to the
// same subscriber, every address of an unassigned cell to none),
// clipped to the block boundary. For destinations outside the block
// the region extends to the first bit where dst and the block diverge.
// 0 means unexpressible in the top 64 bits (claim must be exact).
func (r *ISPRouter) uniformWidth(dst ipv6.Addr) uint8 {
	if r.block.Bits() > 64 {
		return 0
	}
	w := uint8(1)
	if len(r.delegs) > 0 {
		if r.delegs[0].subLen > 64 { // sorted longest-first
			return 0
		}
		w = uint8(r.delegs[0].subLen)
	}
	if r.block.Contains(dst) {
		if bw := uint8(r.block.Bits()); bw > w {
			w = bw
		}
	} else {
		// Outside the block the decision (upstream default) is uniform
		// up to the first bit where dst and the block diverge.
		c := bits.LeadingZeros64(dst.Uint128().Hi ^ r.block.Addr().Uint128().Hi)
		if c >= 64 {
			return 0
		}
		if uint8(c+1) > w {
			w = uint8(c + 1)
		}
	}
	return w
}

// regionClaim is uniformWidth bounded away from the router's own
// interface addresses (same-/64 ones are excluded instead).
func (r *ISPRouter) regionClaim(dst ipv6.Addr, excl *[fpExclCap]ipv6.Addr, nExcl *uint8) uint8 {
	w := r.uniformWidth(dst)
	if w == 0 {
		return 0
	}
	width, ok := avoidAddrs(w, dst, r.addrList, excl, nExcl)
	if !ok {
		*nExcl = 0
		return 0
	}
	return width
}

// CompileStep implements CompilableHop: transit via a delegation or the
// upstream default.
func (r *ISPRouter) CompileStep(in *Iface, dst ipv6.Addr) (CompiledStep, bool) {
	if r.isLocal(dst) {
		return CompiledStep{}, false
	}
	out, ok := r.lookup(dst)
	if !ok {
		if r.block.Contains(dst) || r.upstream == nil || in == r.upstream {
			return CompiledStep{}, false
		}
		out = r.upstream
	}
	step := CompiledStep{Out: out, Forwarded: &r.CountForwarded}
	step.Width = r.regionClaim(dst, &step.Excl, &step.NExcl)
	return step, true
}

// CompileTerminal implements terminalCompiler: unassigned space within
// the block — and, absent a usable upstream, anything unrouted — draws
// Destination Unreachable / no route. This is the error the paper's
// periphery discovery exploits one hop early; the whole unassigned
// delegation cell compiles to one wide entry.
func (r *ISPRouter) CompileTerminal(in *Iface, dst ipv6.Addr) (compiledTerm, bool) {
	if r.isLocal(dst) {
		return compiledTerm{}, false
	}
	if _, ok := r.lookup(dst); ok {
		return compiledTerm{}, false
	}
	if !r.block.Contains(dst) && r.upstream != nil && in != r.upstream {
		return compiledTerm{}, false // transit hop, not a terminal
	}
	t := compiledTerm{
		typ:  wire.ICMPDestUnreach,
		code: wire.UnreachNoRoute,
		src:  in.addr,
		gate: &r.gate,
	}
	t.width = r.regionClaim(dst, &t.excl, &t.nExcl)
	return t, true
}

// compileExpiry implements hopExpirer: Time Exceeded from the arrival
// interface's address for any non-local destination. This is the node
// half of the bounce when a looping probe's hop limit happens to die on
// the provider side rather than at the CPE.
func (r *ISPRouter) compileExpiry(in *Iface, dst ipv6.Addr) (compiledTerm, bool) {
	if r.isLocal(dst) {
		return compiledTerm{}, false
	}
	t := compiledTerm{
		typ: wire.ICMPTimeExceeded, code: wire.TimeExceedHopLimit,
		src:  in.addr,
		gate: &r.gate,
	}
	if width, ok := avoidAddrs(1, dst, r.addrList, &t.excl, &t.nExcl); ok {
		t.width = width
	} else {
		t.nExcl = 0
	}
	return t, true
}

func (r *ISPRouter) emitError(in *Iface, invoking []byte, typ, code uint8) []Emission {
	if !r.gate.allow() {
		return nil
	}
	out := icmpError(in, in.addr, invoking, typ, code)
	if out == nil {
		r.gate.generated--
		return nil
	}
	return r.sc.emit(in, out)
}

// DelegationCount returns the number of installed delegations (for
// diagnostics and tests).
func (r *ISPRouter) DelegationCount() int {
	n := 0
	for _, t := range r.delegs {
		n += len(t.entries)
	}
	return n
}
