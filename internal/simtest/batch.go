package simtest

import (
	"context"
	"fmt"

	"repro/internal/ipv6"
	"repro/internal/xmap"
)

// batchLeg is one leg of the batch-vs-per-packet oracle: the full result
// set plus every statistic the transmission path must not perturb.
type batchLeg struct {
	stats xmap.Stats
	set   map[ipv6.Addr]bool
}

// runBatchLeg scans one freshly built, identically seeded fault world
// through the given driver wrapper.
func runBatchLeg(seed int64, p FaultProfile, wrap func(*xmap.SimDriver) xmap.Driver) (batchLeg, error) {
	f, err := reliabilityFixture(seed, p)
	if err != nil {
		return batchLeg{}, err
	}
	drv := wrap(f.Drv)
	s, err := xmap.New(xmap.Config{Window: f.Window, Seed: scanSeed(seed), DedupExact: true}, drv)
	if err != nil {
		return batchLeg{}, err
	}
	leg := batchLeg{set: map[ipv6.Addr]bool{}}
	leg.stats, err = s.Run(context.Background(), func(r xmap.Response) { leg.set[r.Responder] = true })
	if err != nil {
		return batchLeg{}, err
	}
	if c, ok := drv.(interface{ Close() }); ok {
		c.Close()
	}
	return leg, nil
}

// RunBatchOracle is the batch-vs-per-packet differential oracle: the
// same seeded scan, against the same seeded fault world, through three
// transmission paths —
//
//   - per-packet: the pre-batching compatibility path, one engine
//     injection per Send via AdaptPacketDriver (the reference leg);
//   - batched: the scanner's native burst path through SendBatch;
//   - ring: the batched path behind a RingDriver's SPSC ring and pump
//     goroutine, as ScanParallel shards run it.
//
// The transmission path must be invisible: identical responder sets and
// identical dedup accounting (Received/Unique/Duplicates/Invalid) under
// EVERY fault profile, lossy ones included. That only holds because the
// whole chain preserves per-packet order and decision sequence — the
// engine pumps batches one packet at a time (same fault-rng order as
// sequential injection), the SPSC ring is FIFO, and the scanner flushes
// the ring before every drain, making drains the same barrier in all
// three legs. A reordering, coalescing, or probe-dropping regression
// anywhere in that chain desynchronizes the fault decision sequence and
// shows up as a diff here.
func RunBatchOracle(seed int64, p FaultProfile) ([]string, error) {
	perPacket, err := runBatchLeg(seed, p, func(d *xmap.SimDriver) xmap.Driver {
		return xmap.AdaptPacketDriver(d)
	})
	if err != nil {
		return nil, err
	}
	batched, err := runBatchLeg(seed, p, func(d *xmap.SimDriver) xmap.Driver { return d })
	if err != nil {
		return nil, err
	}
	ringed, err := runBatchLeg(seed, p, func(d *xmap.SimDriver) xmap.Driver {
		return xmap.NewRingDriver(d, 64)
	})
	if err != nil {
		return nil, err
	}

	var problems []string
	diff := func(name string, leg batchLeg) {
		if leg.stats.Sent != perPacket.stats.Sent {
			problems = append(problems, fmt.Sprintf(
				"%s leg sent %d probes, per-packet %d", name, leg.stats.Sent, perPacket.stats.Sent))
		}
		for _, c := range []struct {
			field    string
			got, ref uint64
		}{
			{"Received", leg.stats.Received, perPacket.stats.Received},
			{"Unique", leg.stats.Unique, perPacket.stats.Unique},
			{"Duplicates", leg.stats.Duplicates, perPacket.stats.Duplicates},
			{"Invalid", leg.stats.Invalid, perPacket.stats.Invalid},
		} {
			if c.got != c.ref {
				problems = append(problems, fmt.Sprintf(
					"%s leg %s = %d, per-packet %d", name, c.field, c.got, c.ref))
			}
		}
		for a := range perPacket.set {
			if !leg.set[a] {
				problems = append(problems, fmt.Sprintf("%s leg missed responder %s", name, a))
			}
		}
		for a := range leg.set {
			if !perPacket.set[a] {
				problems = append(problems, fmt.Sprintf("%s leg found phantom responder %s", name, a))
			}
		}
	}
	diff("batched", batched)
	diff("ring", ringed)
	return problems, nil
}
