package simtest

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/ipv6"
	"repro/internal/telemetry"
	"repro/internal/xmap"
)

// wedgeDriver passes a fixed number of packets through to the
// underlying driver, then blocks every further SendBatch until release
// is closed — a deterministic model of a wedged packet layer (a NIC
// queue that stopped draining). Behind a RingDriver it wedges the pump,
// the ring fills, and the scanner spins in ring backpressure: exactly
// the hang the stall watchdog exists to name.
type wedgeDriver struct {
	under   xmap.Driver
	accept  int64
	sent    atomic.Int64
	release chan struct{}
}

func (d *wedgeDriver) SendBatch(pkts [][]byte) (int, error) {
	if d.sent.Load() >= d.accept {
		<-d.release
	}
	n, err := d.under.SendBatch(pkts)
	d.sent.Add(int64(n))
	return n, err
}

func (d *wedgeDriver) RecvBatch(buf [][]byte) [][]byte { return d.under.RecvBatch(buf) }

func (d *wedgeDriver) SourceAddr() ipv6.Addr { return d.under.SourceAddr() }

func (d *wedgeDriver) Release(pkts [][]byte) {
	if rel, ok := d.under.(xmap.Releaser); ok {
		rel.Release(pkts)
	}
}

// RunWatchdogScenario wedges one of two shard scanners mid-send and
// checks the stall watchdog produces a structured diagnosis naming the
// stalled shard, its stage, and the ring-stall span its trace stream
// recorded last — while the cleanly finished shard stays exempt. The
// wedge is then released and the scan must complete normally.
func RunWatchdogScenario(seed int64) ([]string, error) {
	f, err := BuildISPFixture(seed)
	if err != nil {
		return nil, err
	}
	var problems []string
	tracer := telemetry.NewTracer(telemetry.TracerOptions{
		Seed:        scanSeed(seed),
		SampleShift: 0, // trace everything: the wedged probe must span
		ScanStreams: 2,
		SimStreams:  1,
	})
	wd := telemetry.NewWatchdog(2, 4, tracer)
	f.Drv.RegisterTracer(tracer)

	cfg := xmap.Config{
		Window:   f.Window,
		Seed:     scanSeed(seed),
		Shards:   2,
		Tracer:   tracer,
		Watchdog: wd,
	}

	// Shard 0 runs to completion first: it must report StageDone and
	// stay exempt from every later stall check.
	cfg0 := cfg
	cfg0.ShardIndex, cfg0.TraceStream = 0, 0
	s0, err := xmap.New(cfg0, f.Drv)
	if err != nil {
		return nil, err
	}
	if _, err := s0.Run(context.Background(), nil); err != nil {
		return nil, fmt.Errorf("shard 0 scan: %w", err)
	}

	// Shard 1 sends through a small ring whose pump wedges after a few
	// packets; the scanner goroutine ends up spinning on the full ring.
	wedge := &wedgeDriver{under: f.Drv, accept: 8, release: make(chan struct{})}
	ring := xmap.NewRingDriver(wedge, 8)
	ring.SetTracer(tracer, 1)
	cfg1 := cfg
	cfg1.ShardIndex, cfg1.TraceStream = 1, 1
	s1, err := xmap.New(cfg1, ring)
	if err != nil {
		ring.Close()
		return nil, err
	}
	done := make(chan error, 1)
	go func() {
		_, err := s1.Run(context.Background(), nil)
		done <- err
	}()

	// Tick the checker until the wedge is diagnosed. The checker clock
	// is our own loop counter — the watchdog only needs monotonicity.
	var diag *telemetry.StallDiagnosis
	deadline := time.Now().Add(10 * time.Second)
	for tick := uint64(1); diag == nil; tick++ {
		if time.Now().After(deadline) {
			problems = append(problems, "watchdog never diagnosed the wedged shard")
			break
		}
		for _, d := range wd.Check(tick) {
			if d.Shard == 0 {
				problems = append(problems, fmt.Sprintf("finished shard 0 diagnosed as stalled: %s", d))
				continue
			}
			// Wait for the diagnosis that proves the hang reached ring
			// backpressure; earlier ticks may catch the shard mid-start.
			if d.LastSpan == "ring-stall" {
				d := d
				diag = &d
				break
			}
		}
		time.Sleep(time.Millisecond)
	}
	if diag != nil {
		if diag.Shard != 1 {
			problems = append(problems, fmt.Sprintf("diagnosis names shard %d, want 1", diag.Shard))
		}
		if diag.Stage != "send" {
			problems = append(problems, fmt.Sprintf("diagnosis names stage %q, want \"send\"", diag.Stage))
		}
		if diag.StalledFor < 4 {
			problems = append(problems, fmt.Sprintf("diagnosis fired after %d ticks, threshold is 4", diag.StalledFor))
		}
	}

	// Release the wedge: the scan must finish cleanly and the shard's
	// done stage must silence the watchdog again.
	close(wedge.release)
	if err := <-done; err != nil {
		problems = append(problems, fmt.Sprintf("released scan failed: %v", err))
	}
	ring.Close()
	if ds := wd.Check(1 << 62); len(ds) != 0 {
		problems = append(problems, fmt.Sprintf("watchdog still diagnoses after completion: %v", ds))
	}
	if tracer.SpansRecorded() == 0 {
		problems = append(problems, "tracer recorded no spans at full sampling")
	}
	return problems, nil
}
