package simtest

import (
	"context"
	"fmt"

	"repro/internal/ipv6"
	"repro/internal/netsim"
	"repro/internal/uint128"
	"repro/internal/xmap"
)

// HostileProfile parameterizes one adversarial regime over the ISP
// fixture, the hostile analog of FaultProfile: which responder model is
// planted and where. The zero Mode is the honest baseline.
type HostileProfile struct {
	Name string
	Mode netsim.HostileMode
	// Regions are /60 indices inside the fixture's /56 block claimed by
	// hostile responders. Indices 0 (the honest CPE WANs) and 12 (cell
	// 200, cpe0's LAN delegation) must stay honest.
	Regions []int
	// StormFactor is the HostileStorm reply multiplier.
	StormFactor int
}

// hostileRegionBits is the planted-region width: one /60 = 16 window
// cells, matching the scanner's default alias detect-prefix, so the
// precision oracle can demand exact prefix equality.
const hostileRegionBits = 60

// HostileProfiles is the adversarial sweep: every hostile responder
// model the issue names, plus the honest baseline proving the defenses
// are inert without an adversary.
var HostileProfiles = []HostileProfile{
	{Name: "honest"},
	{Name: "aliased", Mode: netsim.HostileAliased, Regions: []int{5, 9}},
	{Name: "spoof", Mode: netsim.HostileSpoofer, Regions: []int{5, 9}},
	{Name: "malformed", Mode: netsim.HostileMalformed, Regions: []int{5, 9}},
	{Name: "storm", Mode: netsim.HostileStorm, Regions: []int{5, 9}, StormFactor: 6},
}

// HostileProfileByName returns the named profile from HostileProfiles.
func HostileProfileByName(name string) (HostileProfile, bool) {
	for _, hp := range HostileProfiles {
		if hp.Name == name {
			return hp, true
		}
	}
	return HostileProfile{}, false
}

// BuildHostileFixture is BuildISPFixture plus the profile's planted
// adversarial regions: each /60 is delegated to a netsim.Hostile node
// exactly as the honest CPE delegations are wired, and recorded as
// ground truth in Fixture.Hostile. The honest parts of the fixture are
// byte-identical to BuildISPFixture's.
func BuildHostileFixture(seed int64, hp HostileProfile) (*ISPFixture, error) {
	f, err := BuildISPFixture(seed)
	if err != nil {
		return nil, err
	}
	if hp.Mode == 0 {
		return f, nil
	}
	for i, idx := range hp.Regions {
		region, err := f.Block.Sub(hostileRegionBits, uint128.From64(uint64(idx)))
		if err != nil {
			return nil, err
		}
		h := netsim.NewHostile(netsim.HostileConfig{
			Name:        fmt.Sprintf("hostile%d", i),
			Prefix:      region,
			Mode:        hp.Mode,
			Seed:        seed*100 + int64(i),
			StormFactor: hp.StormFactor,
		})
		first64, err := region.Sub(64, uint128.Zero)
		if err != nil {
			return nil, err
		}
		down := f.isp.AddIface(ipv6.SLAAC(first64, 1), h.Name()+":down")
		f.Eng.Connect(down, h.Iface(), 0)
		if err := f.isp.Delegate(region, down); err != nil {
			return nil, err
		}
		f.Routes = append(f.Routes, Route{Prefix: region, Label: "isp->" + h.Name()})
		f.Hostile = append(f.Hostile, PlantedRegion{Prefix: region, Mode: hp.Mode, Node: h})
	}
	return f, nil
}

// hostileRun is one scan leg's comparable outcome under a hostile
// profile.
type hostileRun struct {
	Stats xmap.Stats
	Set   map[ipv6.Addr]bool
	// RegionProbes counts probes whose destination fell inside a
	// planted hostile region — the waste the defense must cut.
	RegionProbes int
	Blocked      []ipv6.Prefix
}

// hostileDrainEvery pins the oracle legs' drain cadence: the default 64
// drains the 256-cell fixture only four times, far too coarse for the
// detector's cooldown clock to act mid-scan.
const hostileDrainEvery = 16

// runHostile scans one freshly built hostile fixture.
func runHostile(seed int64, hp HostileProfile, mutate func(*xmap.Config)) (hostileRun, error) {
	out := hostileRun{Set: map[ipv6.Addr]bool{}}
	f, err := BuildHostileFixture(seed, hp)
	if err != nil {
		return out, err
	}
	rec := &recordingDriver{Driver: f.Drv}
	cfg := xmap.Config{
		Window: f.Window, Seed: scanSeed(seed), DedupExact: true,
		DrainEvery: hostileDrainEvery,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := xmap.New(cfg, rec)
	if err != nil {
		return out, err
	}
	out.Stats, err = s.Run(context.Background(), func(r xmap.Response) { out.Set[r.Responder] = true })
	if err != nil {
		return out, err
	}
	for _, dst := range rec.dsts {
		for _, pr := range f.Hostile {
			if pr.Prefix.Contains(dst) {
				out.RegionProbes++
				break
			}
		}
	}
	out.Blocked = s.BlockedPrefixes()
	return out, nil
}

// pollution counts responders outside the honest ground truth.
func pollution(set map[ipv6.Addr]bool, truth map[ipv6.Addr]bool) int {
	n := 0
	for a := range set {
		if !truth[a] {
			n++
		}
	}
	return n
}

// RunHostileOracle is the defended-vs-undefended differential oracle
// plus the alias-detector precision/recall check, for one seed and one
// hostile profile:
//
//   - the defended scan keeps full recall on the honest ground truth
//     (every CPE WAN and the ISP router) under every hostile model;
//   - against a planted adversary it wastes strictly fewer probes on
//     hostile regions and admits strictly less result pollution than
//     the undefended scan;
//   - every prefix the detector blocklists is a planted hostile region
//     (precision 1.0 — an honest prefix is never blocklisted) and every
//     planted region is caught (recall);
//   - on the honest baseline the defenses are inert: no detections, no
//     quarantines, no blocklisting, and a probe-for-probe identical
//     scan to the undefended leg;
//   - under the storm model a starved receive budget forces overload
//     shedding without costing a single true hit.
func RunHostileOracle(seed int64, hp HostileProfile) ([]string, error) {
	undefended, err := runHostile(seed, hp, nil)
	if err != nil {
		return nil, err
	}
	defended, err := runHostile(seed, hp, func(c *xmap.Config) { c.Defend = true })
	if err != nil {
		return nil, err
	}

	f, err := BuildHostileFixture(seed, hp)
	if err != nil {
		return nil, err
	}
	truth := f.Truth()

	var problems []string
	// Recall on honest devices: the defense must never cost a true hit.
	for a := range truth {
		if !defended.Set[a] {
			problems = append(problems, fmt.Sprintf("defended scan lost true responder %s", a))
		}
	}
	// Detector precision 1.0: every blocklisted prefix is planted truth.
	for _, b := range defended.Blocked {
		planted := false
		for _, pr := range f.Hostile {
			if pr.Prefix == b {
				planted = true
				break
			}
		}
		if !planted {
			problems = append(problems, fmt.Sprintf("detector blocklisted honest prefix %s", b))
		}
	}
	if len(undefended.Blocked) != 0 || undefended.Stats.AliasDetected != 0 {
		problems = append(problems, "undefended leg ran the alias detector")
	}

	if hp.Mode == 0 {
		// Honest baseline: defenses must be inert and invisible.
		d := defended.Stats
		if d.AliasDetected != 0 || d.AliasBlocked != 0 || d.Quarantined != 0 || d.Shed != 0 {
			problems = append(problems, fmt.Sprintf(
				"honest scan tripped defenses: detected=%d blocked=%d quarantined=%d shed=%d",
				d.AliasDetected, d.AliasBlocked, d.Quarantined, d.Shed))
		}
		if d.Sent != undefended.Stats.Sent {
			problems = append(problems, fmt.Sprintf(
				"honest defended scan sent %d probes, undefended %d", d.Sent, undefended.Stats.Sent))
		}
		for a := range undefended.Set {
			if !defended.Set[a] {
				problems = append(problems, fmt.Sprintf("honest defended scan missed %s", a))
			}
		}
		for a := range defended.Set {
			if !undefended.Set[a] {
				problems = append(problems, fmt.Sprintf("honest defended scan invented %s", a))
			}
		}
		return problems, nil
	}

	// Detector recall: every planted region ends up blocklisted.
	for _, pr := range f.Hostile {
		caught := false
		for _, b := range defended.Blocked {
			if b == pr.Prefix {
				caught = true
				break
			}
		}
		if !caught {
			problems = append(problems, fmt.Sprintf(
				"planted %s region %s never blocklisted (detected %d, blocked %d)",
				pr.Mode, pr.Prefix, defended.Stats.AliasDetected, defended.Stats.AliasBlocked))
		}
	}
	// Probe savings: strictly fewer probes land in hostile regions.
	if defended.RegionProbes >= undefended.RegionProbes {
		problems = append(problems, fmt.Sprintf(
			"defended scan spent %d probes on hostile regions, undefended %d — no savings",
			defended.RegionProbes, undefended.RegionProbes))
	}
	// Pollution: the undefended scan is poisoned (that is the attack);
	// the defended scan admits strictly less of it.
	undefPoll := pollution(undefended.Set, truth)
	defPoll := pollution(defended.Set, truth)
	if undefPoll == 0 {
		problems = append(problems, fmt.Sprintf(
			"%s adversary polluted nothing undefended — attack model inert", hp.Mode))
	}
	if defPoll >= undefPoll {
		problems = append(problems, fmt.Sprintf(
			"defended scan admitted %d phantom responders, undefended %d", defPoll, undefPoll))
	}
	switch hp.Mode {
	case netsim.HostileMalformed:
		if defended.Stats.Quarantined == 0 {
			problems = append(problems, "malformed adversary produced zero quarantined replies")
		}
		if defPoll != 0 {
			problems = append(problems, fmt.Sprintf(
				"strict validation still admitted %d malformed phantoms", defPoll))
		}
	case netsim.HostileStorm:
		// Shed leg: a starved receive budget must force shedding while
		// keeping every true hit (shedding only drops replies that could
		// not add information).
		shed, err := runHostile(seed, hp, func(c *xmap.Config) {
			c.Defend = true
			c.ShedBudget = 8
		})
		if err != nil {
			return nil, err
		}
		if shed.Stats.Shed == 0 {
			problems = append(problems, "storm with ShedBudget=8 shed nothing")
		}
		for a := range truth {
			if !shed.Set[a] {
				problems = append(problems, fmt.Sprintf("shedding lost true responder %s", a))
			}
		}
	}
	return problems, nil
}
