package simtest

import (
	"context"
	"fmt"

	"repro/internal/ipv6"
	"repro/internal/xmap"
)

// resumeCheckpointEvery is the checkpoint interval the resume oracle
// scans with; the re-sent-probe bound is stated against it.
const resumeCheckpointEvery = 32

// reliabilityFixture is one seeded fixture with the profile's injector
// installed — every oracle leg starts from an identical world. An
// inactive profile ("none") installs no fault layer at all, keeping the
// engine's batched replay eligible; a no-op injector would pin every
// leg to per-packet interpretation and hide the batched path from the
// oracles.
func reliabilityFixture(seed int64, p FaultProfile) (*ISPFixture, error) {
	f, err := BuildISPFixture(seed)
	if err != nil {
		return nil, err
	}
	if p.Active() {
		inj := NewInjector(seed, p)
		f.Eng.SetFault(inj.Apply)
	}
	return f, nil
}

// RunResumeOracle is the kill-and-resume differential oracle: a scan
// killed mid-cycle and resumed from its last periodic checkpoint must
// report exactly the responder set of an uninterrupted scan, and the
// crash may cost at most one checkpoint interval of re-sent probes.
// It applies to lossless profiles (duplication and reordering included):
// under loss, responses to pre-crash probes are genuinely gone, so set
// equality is not a sound oracle there — the adaptive oracle covers the
// lossy profiles instead.
//
// The killed and resumed legs scan through a RingDriver, so the oracle
// also covers the pipelined transmission path's crash safety: probes
// sitting in the SPSC ring are flushed before every checkpoint (the
// ring must be empty at each emission — asserted directly) and anything
// between the last checkpoint and the kill is re-sent on resume, never
// lost. The probe-count bound then proves the flush doesn't over-send
// either.
func RunResumeOracle(seed int64, p FaultProfile) ([]string, error) {
	if !p.Lossless() {
		return nil, nil
	}
	var problems []string
	cfgFor := func(f *ISPFixture) xmap.Config {
		return xmap.Config{Window: f.Window, Seed: scanSeed(seed), DedupExact: true}
	}

	// Reference leg: the uninterrupted scan, direct driver.
	fA, err := reliabilityFixture(seed, p)
	if err != nil {
		return nil, err
	}
	sA, err := xmap.New(cfgFor(fA), fA.Drv)
	if err != nil {
		return nil, err
	}
	refSet := map[ipv6.Addr]bool{}
	refStats, err := sA.Run(context.Background(), func(r xmap.Response) { refSet[r.Responder] = true })
	if err != nil {
		return nil, err
	}

	// Kill leg: identical world, killed after a seed-varied number of
	// targets with periodic checkpoints, scanning through the ring.
	// Everything after the last periodic state is discarded, as a real
	// kill -9 would.
	killAt := uint64(48 + (seed*31)%150)
	fB, err := reliabilityFixture(seed, p)
	if err != nil {
		return nil, err
	}
	ringKill := xmap.NewRingDriver(fB.Drv, resumeCheckpointEvery)
	var states []xmap.ShardState
	cfgKill := cfgFor(fB)
	cfgKill.MaxTargets = killAt
	cfgKill.CheckpointEvery = resumeCheckpointEvery
	cfgKill.OnCheckpoint = func(st xmap.ShardState) {
		if n := ringKill.Pending(); n != 0 {
			problems = append(problems, fmt.Sprintf(
				"checkpoint at %d targets emitted with %d probes still in the ring", st.Stats.Targets, n))
		}
		states = append(states, st)
	}
	sKill, err := xmap.New(cfgKill, ringKill)
	if err != nil {
		return nil, err
	}
	union := map[ipv6.Addr]bool{}
	killStats, err := sKill.Run(context.Background(), func(r xmap.Response) { union[r.Responder] = true })
	ringKill.Close()
	if err != nil {
		return nil, err
	}
	if len(states) < 2 {
		return []string{fmt.Sprintf("kill at %d targets emitted only %d checkpoint states", killAt, len(states))}, nil
	}
	crash := states[len(states)-2]

	// Resume leg: continue on the same (still-running) network from the
	// last periodic checkpoint, again through a fresh ring — as a
	// restarted process would build one.
	ringResume := xmap.NewRingDriver(fB.Drv, resumeCheckpointEvery)
	cfgResume := cfgFor(fB)
	cfgResume.Resume = &crash
	sResume, err := xmap.New(cfgResume, ringResume)
	if err != nil {
		return nil, err
	}
	resumeStats, err := sResume.Run(context.Background(), func(r xmap.Response) { union[r.Responder] = true })
	ringResume.Close()
	if err != nil {
		return nil, err
	}
	for a := range refSet {
		if !union[a] {
			problems = append(problems, fmt.Sprintf("responder %s lost across kill@%d/resume@%d",
				a, killAt, crash.Stats.Targets))
		}
	}
	for a := range union {
		if !refSet[a] {
			problems = append(problems, fmt.Sprintf("kill/resume invented responder %s", a))
		}
	}
	if resumeStats.Targets != refStats.Targets {
		problems = append(problems, fmt.Sprintf(
			"resumed scan covered %d cumulative targets, uninterrupted %d", resumeStats.Targets, refStats.Targets))
	}
	// Crash cost: targets re-executed after resume are those between the
	// checkpoint and the kill — at most one checkpoint interval.
	if wasted := killStats.Targets - crash.Stats.Targets; wasted > resumeCheckpointEvery {
		problems = append(problems, fmt.Sprintf(
			"crash re-sent %d targets, more than one checkpoint interval (%d)", wasted, resumeCheckpointEvery))
	}
	// Probe-count bound: both legs together send at most one checkpoint
	// interval more than the uninterrupted scan.
	totalSent := killStats.Sent + resumeStats.Sent - crash.Stats.Sent
	if totalSent > refStats.Sent+resumeCheckpointEvery {
		problems = append(problems, fmt.Sprintf(
			"kill+resume sent %d probes, uninterrupted %d (+%d allowed)",
			totalSent, refStats.Sent, resumeCheckpointEvery))
	}
	return problems, nil
}

// RunAdaptiveOracle compares loss-recovery strategies under a lossy
// profile: the blind fixed multiplier (ProbesPerTarget 3, ZMap's -P)
// against the adaptive reliability layer (retry scheduler + AIMD). The
// adaptive scan must match or beat the blind hit rate while sending
// strictly fewer probes — retries spend probes only on silent targets.
func RunAdaptiveOracle(seed int64, p FaultProfile) ([]string, error) {
	if p.Lossless() {
		return nil, nil
	}
	run := func(mutate func(*xmap.Config)) (xmap.Stats, error) {
		f, err := reliabilityFixture(seed, p)
		if err != nil {
			return xmap.Stats{}, err
		}
		cfg := xmap.Config{Window: f.Window, Seed: scanSeed(seed), DedupExact: true}
		mutate(&cfg)
		s, err := xmap.New(cfg, f.Drv)
		if err != nil {
			return xmap.Stats{}, err
		}
		return s.Run(context.Background(), nil)
	}
	blind, err := run(func(c *xmap.Config) { c.ProbesPerTarget = 3 })
	if err != nil {
		return nil, err
	}
	adaptive, err := run(func(c *xmap.Config) { c.Retries = 3; c.AIMD = true })
	if err != nil {
		return nil, err
	}

	var problems []string
	if adaptive.Sent >= blind.Sent {
		problems = append(problems, fmt.Sprintf(
			"adaptive sent %d probes, blind multiplier %d — no probe savings", adaptive.Sent, blind.Sent))
	}
	if adaptive.HitRate() < blind.HitRate() {
		problems = append(problems, fmt.Sprintf(
			"adaptive hit rate %.5f (unique %d / sent %d) below blind %.5f (unique %d / sent %d)",
			adaptive.HitRate(), adaptive.Unique, adaptive.Sent,
			blind.HitRate(), blind.Unique, blind.Sent))
	}
	if adaptive.Retried == 0 {
		problems = append(problems, "lossy profile triggered no retries")
	}
	if p.FlapLen > 0 && adaptive.RateDown == 0 {
		problems = append(problems, "link flap triggered no AIMD backoff")
	}
	return problems, nil
}
