package simtest

import (
	"fmt"

	"repro/internal/ipv6"
	"repro/internal/netsim"
	"repro/internal/topo"
	"repro/internal/uint128"
	"repro/internal/xmap"
)

// FixtureCPEs is the number of CPEs in the miniature ISP fixture.
const FixtureCPEs = 5

// ISPFixture is a miniature ISP topology for scan scenarios: scanner
// edge, core router, one ISP router delegating /64s to FixtureCPEs CPEs
// (the first also holding a LAN delegation elsewhere in the block).
// It mirrors the xmap package's test fixture so the harness exercises
// the same semantics end to end.
type ISPFixture struct {
	Eng     *netsim.Engine
	Edge    *netsim.Edge
	Drv     *xmap.SimDriver
	Block   ipv6.Prefix
	Window  ipv6.Window
	WANs    []ipv6.Addr
	ISPAddr ipv6.Addr
	// Routes is every prefix installed anywhere in the topology, with a
	// label for the forwarding decision; the LPM differential oracle
	// replays lookups against these.
	Routes []Route
	// Hostile is the planted adversarial ground truth (BuildHostileFixture).
	Hostile []PlantedRegion

	// isp is kept so adversarial builders can delegate extra regions.
	isp *netsim.ISPRouter
}

// PlantedRegion is ground truth for one adversarial responder planted
// in a fixture: the claimed region and the model it plays.
type PlantedRegion struct {
	Prefix ipv6.Prefix
	Mode   netsim.HostileMode
	Node   *netsim.Hostile
}

// Route is one installed routing entry.
type Route struct {
	Prefix ipv6.Prefix
	Label  string
}

// Truth returns the set of addresses a scan of the fixture window may
// legitimately discover: the CPE WANs plus the ISP router (which
// answers for unassigned space).
func (f *ISPFixture) Truth() map[ipv6.Addr]bool {
	truth := map[ipv6.Addr]bool{f.ISPAddr: true}
	for _, w := range f.WANs {
		truth[w] = true
	}
	return truth
}

// BuildISPFixture constructs the fixture. The engine's loss source is
// seeded from seed, so two fixtures built with the same seed behave
// identically.
func BuildISPFixture(seed int64) (*ISPFixture, error) {
	f := &ISPFixture{
		Eng:     netsim.New(seed),
		Block:   ipv6.MustParsePrefix("2001:db8::/56"),
		ISPAddr: ipv6.MustParseAddr("2001:feed::2"),
	}
	f.Edge = netsim.NewEdge("scanner", ipv6.MustParseAddr("2001:beef::100"))
	core := netsim.NewRouter("core", netsim.ErrorPolicy{})
	isp := netsim.NewISPRouter("isp", f.Block, netsim.ErrorPolicy{})
	f.isp = isp

	coreScan := core.AddIface(ipv6.MustParseAddr("2001:beef::1"), "core:scan")
	coreISP := core.AddIface(ipv6.MustParseAddr("2001:feed::1"), "core:isp")
	ispUp := isp.AddIface(f.ISPAddr, "isp:up")
	isp.SetUpstream(ispUp)
	f.Eng.Connect(f.Edge.Iface(), coreScan, 0)
	f.Eng.Connect(coreISP, ispUp, 0)
	scanNet := ipv6.MustParsePrefix("2001:beef::/64")
	core.AddRoute(f.Block, coreISP)
	core.AddRoute(scanNet, coreScan)
	f.Routes = append(f.Routes,
		Route{Prefix: f.Block, Label: "core->isp"},
		Route{Prefix: scanNet, Label: "core->scan"})

	for i := 0; i < FixtureCPEs; i++ {
		wanPrefix, err := f.Block.Sub(64, uint128.From64(uint64(i)))
		if err != nil {
			return nil, err
		}
		wanAddr := ipv6.SLAAC(wanPrefix, 0x0211_22ff_fe00_0000|uint64(i))
		cfg := netsim.CPEConfig{Name: "cpe", WANAddr: wanAddr, WANPrefix: wanPrefix}
		if i == 0 {
			lan, err := f.Block.Sub(64, uint128.From64(200))
			if err != nil {
				return nil, err
			}
			cfg.Delegated = lan
		}
		cpe := netsim.NewCPE(cfg)
		down := isp.AddIface(ipv6.SLAAC(wanPrefix, 1), "isp:down")
		f.Eng.Connect(down, cpe.WAN(), 0)
		if err := isp.Delegate(wanPrefix, down); err != nil {
			return nil, err
		}
		f.Routes = append(f.Routes, Route{Prefix: wanPrefix, Label: fmt.Sprintf("isp->cpe%d", i)})
		if cfg.Delegated.Bits() > 0 {
			if err := isp.Delegate(cfg.Delegated, down); err != nil {
				return nil, err
			}
			f.Routes = append(f.Routes, Route{Prefix: cfg.Delegated, Label: fmt.Sprintf("isp->cpe%d:lan", i)})
		}
		f.WANs = append(f.WANs, wanAddr)
	}

	w, err := ipv6.NewWindow(f.Block, 64)
	if err != nil {
		return nil, err
	}
	f.Window = w
	f.Drv = xmap.NewSimDriver(f.Eng, f.Edge)
	return f, nil
}

// BuildLoopDeployment generates a small single-ISP deployment (China
// Unicom's spec: delegated /60s with the WAN inside the delegation, the
// paper's highest loop rate) for the routing-loop scenario.
func BuildLoopDeployment(seed int64) (*topo.Deployment, error) {
	return topo.Build(topo.Config{
		Seed:             seed,
		Scale:            0.0005,
		WindowWidth:      8,
		MaxDevicesPerISP: 40,
		OnlyISPs:         []int{12},
	})
}

// scanSeed derives the scan permutation/validation seed for a harness
// seed.
func scanSeed(seed int64) []byte {
	return []byte(fmt.Sprintf("simtest-%d", seed))
}
