package simtest

import (
	"flag"
	"fmt"
	"testing"

	"repro/internal/ipv6"
	"repro/internal/netsim"
	"repro/internal/wire"
)

var (
	seedCount = flag.Int("seeds", 20, "number of seeds TestScenarios sweeps")
	baseSeed  = flag.Int64("base-seed", 1, "first seed of the sweep (replay a failure with -base-seed N -seeds 1)")
)

// TestScenarios is the scenario runner: for every seed in the sweep and
// every fault profile, it exercises xmap discovery, subnet inference
// and loopscan end to end with the invariant checkers attached, plus
// the per-seed differential oracles. Each subtest name carries the seed
// and profile, so a failure replays exactly with
//
//	go test ./internal/simtest -run 'TestScenarios/seed=N/profile' -base-seed N -seeds 1
func TestScenarios(t *testing.T) {
	for i := 0; i < *seedCount; i++ {
		seed := *baseSeed + int64(i)
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			report := func(t *testing.T, scenario string, problems []string, err error) {
				t.Helper()
				if err != nil {
					t.Fatalf("%s: %v", scenario, err)
				}
				for _, p := range problems {
					t.Errorf("%s: %s", scenario, p)
				}
			}
			for _, p := range Profiles {
				p := p
				t.Run(p.Name, func(t *testing.T) {
					t.Logf("replay: go test ./internal/simtest -run 'TestScenarios/seed=%d/%s' -base-seed %d -seeds 1", seed, p.Name, seed)
					problems, err := RunDiscoveryScenario(seed, p)
					report(t, "discovery", problems, err)
					problems, err = RunSubnetScenario(seed, p)
					report(t, "subnet", problems, err)
					problems, err = RunLoopScenario(seed, p)
					report(t, "loopscan", problems, err)
				})
			}
			t.Run("oracle-routes", func(t *testing.T) {
				report(t, "lpm-vs-linear", RandomRouteOracle(seed), nil)
			})
			t.Run("oracle-udp", func(t *testing.T) {
				problems, err := RunUDPOracle(seed)
				report(t, "sim-vs-udp", problems, err)
			})
			t.Run("oracle-sharded", func(t *testing.T) {
				problems, err := RunShardOracle(seed, 4)
				report(t, "sharded-vs-single", problems, err)
			})
			t.Run("oracle-batch", func(t *testing.T) {
				for _, p := range Profiles {
					problems, err := RunBatchOracle(seed, p)
					report(t, "batch-vs-per-packet/"+p.Name, problems, err)
				}
			})
			t.Run("oracle-fastpath", func(t *testing.T) {
				for _, p := range Profiles {
					problems, err := RunFastPathOracle(seed, p)
					report(t, "fastpath-vs-interpreted/"+p.Name, problems, err)
				}
			})
			t.Run("oracle-resume", func(t *testing.T) {
				for _, p := range Profiles {
					if !p.Lossless() {
						continue
					}
					problems, err := RunResumeOracle(seed, p)
					report(t, "kill-and-resume/"+p.Name, problems, err)
				}
			})
			t.Run("oracle-hostile", func(t *testing.T) {
				for _, hp := range HostileProfiles {
					problems, err := RunHostileOracle(seed, hp)
					report(t, "defended-vs-undefended/"+hp.Name, problems, err)
				}
			})
			t.Run("watchdog", func(t *testing.T) {
				problems, err := RunWatchdogScenario(seed)
				report(t, "wedged-driver-watchdog", problems, err)
			})
			t.Run("oracle-adaptive", func(t *testing.T) {
				for _, name := range []string{"loss", "ratelimit", "flap"} {
					p, ok := ProfileByName(name)
					if !ok {
						t.Fatalf("profile %s missing", name)
					}
					problems, err := RunAdaptiveOracle(seed, p)
					report(t, "adaptive-vs-blind/"+name, problems, err)
				}
			})
		})
	}
}

// TestProfilesCoverFaultClasses pins the sweep to the fault classes the
// harness promises: loss, duplication, reordering, ICMPv6 rate-limit
// bursts and link flaps.
func TestProfilesCoverFaultClasses(t *testing.T) {
	var loss, dup, reorder, ratelimit, flap bool
	for _, p := range Profiles {
		loss = loss || p.LossProb > 0
		dup = dup || p.DupProb > 0
		reorder = reorder || p.ReorderProb > 0
		ratelimit = ratelimit || p.ErrBurstLen > 0
		flap = flap || p.FlapLen > 0
	}
	if !loss || !dup || !reorder || !ratelimit || !flap {
		t.Fatalf("profile sweep incomplete: loss=%v dup=%v reorder=%v ratelimit=%v flap=%v",
			loss, dup, reorder, ratelimit, flap)
	}
	if _, ok := ProfileByName("chaos"); !ok {
		t.Error("chaos profile missing")
	}
}

// TestHostileProfilesCoverModes pins the adversarial sweep to every
// hostile responder model plus the honest baseline.
func TestHostileProfilesCoverModes(t *testing.T) {
	want := []netsim.HostileMode{
		netsim.HostileAliased, netsim.HostileSpoofer,
		netsim.HostileMalformed, netsim.HostileStorm,
	}
	for _, m := range want {
		found := false
		for _, hp := range HostileProfiles {
			if hp.Mode == m {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("hostile sweep missing mode %s", m)
		}
	}
	if hp, ok := HostileProfileByName("honest"); !ok || hp.Mode != 0 {
		t.Error("hostile sweep missing the honest baseline")
	}
}

// nullNode satisfies netsim.Node for taps exercised outside an engine.
type nullNode struct{}

func (nullNode) Name() string                                          { return "null" }
func (nullNode) Handle(in *netsim.Iface, pkt []byte) []netsim.Emission { return nil }

func testIface(name string) *netsim.Iface {
	return netsim.NewIface(nullNode{}, ipv6.MustParseAddr("fd00::1"), name)
}

func echoPkt(t *testing.T, hopLimit uint8) []byte {
	t.Helper()
	pkt, err := wire.BuildEchoRequest(
		ipv6.MustParseAddr("2001:beef::100"), ipv6.MustParseAddr("2001:db8::1"),
		hopLimit, 0x1234, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	return pkt
}

// TestInvariantsFlagHopLimitViolations proves the checker actually
// fires: a flow re-crossing the same link direction must continue a
// strictly-decreasing chain or replay an observed trajectory value —
// anything above or off the known trajectories is reported.
func TestInvariantsFlagHopLimitViolations(t *testing.T) {
	iface := testIface("a")
	// Hop limit above everything seen for the flow: violation.
	iv := NewInvariants(nil)
	iv.Tap(iface, echoPkt(t, 64), false)
	iv.Tap(iface, echoPkt(t, 65), false)
	if len(iv.Violations()) != 1 {
		t.Fatalf("violations = %v, want the increase reported", iv.Violations())
	}
	// Off-trajectory value (never observed, no chain above it): violation.
	iv2 := NewInvariants(nil)
	iv2.Tap(iface, echoPkt(t, 64), false)
	iv2.Tap(iface, echoPkt(t, 62), false) // loop re-crossing: 64 -> 62
	iv2.Tap(iface, echoPkt(t, 63), false) // 63 was never on the trajectory
	if len(iv2.Violations()) != 1 {
		t.Fatalf("violations = %v, want the off-trajectory value reported", iv2.Violations())
	}
	// A byte-identical replay (duplicate or retransmission) re-walking
	// the observed trajectory is legitimate.
	iv3 := NewInvariants(nil)
	for _, h := range []uint8{64, 62, 64, 62} {
		iv3.Tap(iface, echoPkt(t, h), false)
	}
	if len(iv3.Violations()) != 0 {
		t.Fatalf("violations = %v on a legitimate replayed trajectory", iv3.Violations())
	}
}

// TestInvariantsFlagBadChecksums corrupts one payload byte and expects
// the wire-validity check to fire.
func TestInvariantsFlagBadChecksums(t *testing.T) {
	iv := NewInvariants(nil)
	pkt := echoPkt(t, 64)
	pkt[len(pkt)-1] ^= 0xff
	iv.Tap(testIface("a"), pkt, false)
	if len(iv.Violations()) != 1 {
		t.Fatalf("violations = %v, want a checksum finding", iv.Violations())
	}
}

// TestInvariantsFlagCirculation replays one flow past the 255-crossing
// amplification cap and expects exactly one report.
func TestInvariantsFlagCirculation(t *testing.T) {
	iv := NewInvariants(nil)
	iface := testIface("a")
	pkt := echoPkt(t, 64)
	for i := 0; i < 300; i++ {
		iv.Tap(iface, pkt, false)
	}
	found := 0
	for _, v := range iv.Violations() {
		if len(v) > 0 {
			found++
		}
	}
	if found != 1 {
		t.Fatalf("violations = %d, want exactly one circulation report", found)
	}
	if iv.Taps() != 300 {
		t.Errorf("taps = %d, want 300", iv.Taps())
	}
}

// TestInjectorDeterminism: the same seed yields the identical decision
// sequence, and a different seed diverges — the property every replay
// depends on.
func TestInjectorDeterminism(t *testing.T) {
	chaos, ok := ProfileByName("chaos")
	if !ok {
		t.Fatal("chaos profile missing")
	}
	decisions := func(seed int64) []string {
		inj := NewInjector(seed, chaos)
		var out []string
		pkt := echoPkt(t, 64)
		for i := 0; i < 400; i++ {
			o := inj.Apply(nil, pkt)
			out = append(out, fmt.Sprintf("%v/%v", o.Drop, o.Deliveries))
		}
		return out
	}
	a, b := decisions(7), decisions(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at decision %d: %s vs %s", i, a[i], b[i])
		}
	}
	c := decisions(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical decision sequences")
	}
}

// TestInjectorRateLimitTargetsErrors: during a burst window, ICMPv6
// error messages drop while other traffic passes.
func TestInjectorRateLimitTargetsErrors(t *testing.T) {
	p, ok := ProfileByName("ratelimit")
	if !ok {
		t.Fatal("ratelimit profile missing")
	}
	inj := NewInjector(1, p)
	// Handcrafted ICMPv6 Time Exceeded: version 6, next header 58,
	// type 3 (< 128 marks an error message).
	errPkt := make([]byte, 48)
	errPkt[0] = 0x60
	errPkt[6] = 58
	errPkt[40] = 3
	if out := inj.Apply(nil, errPkt); !out.Drop {
		t.Error("error message survived the burst window")
	}
	if out := inj.Apply(nil, echoPkt(t, 64)); out.Drop {
		t.Error("echo request dropped by the rate limiter")
	}
}

// TestPacketKeyHopLimitInvariant: the flow key must survive forwarding
// (hop-limit decrement) but distinguish different flows.
func TestPacketKeyHopLimitInvariant(t *testing.T) {
	a64 := echoPkt(t, 64)
	a63 := append([]byte(nil), a64...)
	a63[7] = 63
	if PacketKey(a64) != PacketKey(a63) {
		t.Error("key changed across a hop-limit decrement")
	}
	b, err := wire.BuildEchoRequest(
		ipv6.MustParseAddr("2001:beef::100"), ipv6.MustParseAddr("2001:db8::2"),
		64, 0x1234, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if PacketKey(a64) == PacketKey(b) {
		t.Error("different destinations share a flow key")
	}
}
