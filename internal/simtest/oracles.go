package simtest

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/ipv6"
	"repro/internal/lpm"
	"repro/internal/topo"
	"repro/internal/uint128"
	"repro/internal/wire"
	"repro/internal/xmap"
)

// recordingDriver wraps an xmap.Driver and records every probe's
// destination address, feeding the route-lookup differential oracle
// with exactly the addresses a real scan resolved.
type recordingDriver struct {
	xmap.Driver
	dsts []ipv6.Addr
}

func (d *recordingDriver) SendBatch(pkts [][]byte) (int, error) {
	for _, pkt := range pkts {
		if len(pkt) >= 40 && pkt[0]>>4 == 6 {
			d.dsts = append(d.dsts, ipv6.AddrFrom128(uint128.FromBytes(pkt[24:40])))
		}
	}
	return d.Driver.SendBatch(pkts)
}

// DiffRouteLookups runs every query address through an LPM trie and the
// linear reference table loaded with the same routes, and reports any
// disagreement — the trie-vs-linear differential oracle over a scan's
// actual probe destinations.
func DiffRouteLookups(routes []Route, queries []ipv6.Addr) []string {
	trie := lpm.New[string]()
	lin := lpm.NewLinear[string]()
	for _, r := range routes {
		trie.Insert(r.Prefix, r.Label)
		lin.Insert(r.Prefix, r.Label)
	}
	var problems []string
	if trie.Len() != lin.Len() {
		problems = append(problems, fmt.Sprintf("route table sizes differ: trie %d, linear %d", trie.Len(), lin.Len()))
	}
	for _, a := range queries {
		tp, tv, tok := trie.LookupPrefix(a)
		lp, lv, lok := lin.LookupPrefix(a)
		if tok != lok || tp != lp || tv != lv {
			problems = append(problems, fmt.Sprintf(
				"route lookup diverges for %s: trie (%s,%q,%v) vs linear (%s,%q,%v)",
				a, tp, tv, tok, lp, lv, lok))
		}
	}
	return problems
}

// RandomRouteOracle drives the trie and the linear table through the
// same seeded random insert/remove/query workload and diffs every
// answer.
func RandomRouteOracle(seed int64) []string {
	rng := rand.New(rand.NewSource(seed ^ 0x10e7a8))
	trie := lpm.New[int]()
	lin := lpm.NewLinear[int]()
	var problems []string

	randAddr := func() ipv6.Addr {
		return ipv6.AddrFrom128(uint128.New(rng.Uint64(), rng.Uint64()))
	}
	var inserted []ipv6.Prefix
	for i := 0; i < 96; i++ {
		p, err := ipv6.NewPrefix(randAddr(), 8+rng.Intn(113))
		if err != nil {
			problems = append(problems, fmt.Sprintf("prefix construction: %v", err))
			continue
		}
		trie.Insert(p, i)
		lin.Insert(p, i)
		inserted = append(inserted, p)
	}
	for i := 0; i < 24 && len(inserted) > 0; i++ {
		p := inserted[rng.Intn(len(inserted))]
		tr, lr := trie.Remove(p), lin.Remove(p)
		if tr != lr {
			problems = append(problems, fmt.Sprintf("Remove(%s) diverges: trie %v, linear %v", p, tr, lr))
		}
	}
	if trie.Len() != lin.Len() {
		problems = append(problems, fmt.Sprintf("Len diverges: trie %d, linear %d", trie.Len(), lin.Len()))
	}
	for _, p := range inserted {
		tv, tok := trie.Exact(p)
		lv, lok := lin.Exact(p)
		if tok != lok || tv != lv {
			problems = append(problems, fmt.Sprintf("Exact(%s) diverges: trie (%d,%v), linear (%d,%v)", p, tv, tok, lv, lok))
		}
	}
	var queries []ipv6.Addr
	for i := 0; i < 128; i++ {
		queries = append(queries, randAddr())
	}
	// Half the queries land inside installed prefixes so matches are
	// exercised, not just misses.
	for i := 0; i < 128 && len(inserted) > 0; i++ {
		p := inserted[rng.Intn(len(inserted))]
		host := uint128.New(rng.Uint64(), rng.Uint64())
		if p.Bits() < 128 {
			host = host.And(uint128.Max.Rsh(uint(p.Bits())))
		} else {
			host = uint128.Zero
		}
		queries = append(queries, ipv6.AddrFrom128(p.Addr().Uint128().Or(host)))
	}
	for _, a := range queries {
		tp, tv, tok := trie.LookupPrefix(a)
		lp, lv, lok := lin.LookupPrefix(a)
		if tok != lok || tp != lp || tv != lv {
			problems = append(problems, fmt.Sprintf(
				"random lookup diverges for %s: trie (%s,%d,%v) vs linear (%s,%d,%v)",
				a, tp, tv, tok, lp, lv, lok))
		}
	}
	return problems
}

// RunUDPOracle runs the same seeded scan through the lock-step sim
// driver and through the loopback UDP driver (bridged into an identical
// topology) and diffs the responder sets — the sim-vs-real-socket
// differential oracle. No faults are injected: the two legs must agree
// exactly. Invariants stay attached on both engines; on the UDP leg the
// tap fires on the responder goroutine, exercising the checker under
// the race detector.
func RunUDPOracle(seed int64) ([]string, error) {
	var problems []string

	simFix, err := BuildISPFixture(seed)
	if err != nil {
		return nil, err
	}
	simInv := NewInvariants(nil)
	simInv.Attach(simFix.Eng)
	simScanner, err := xmap.New(xmap.Config{Window: simFix.Window, Seed: scanSeed(seed), DedupExact: true}, simFix.Drv)
	if err != nil {
		return nil, err
	}
	simSet := map[ipv6.Addr]bool{}
	if _, err := simScanner.Run(context.Background(), func(r xmap.Response) { simSet[r.Responder] = true }); err != nil {
		return nil, err
	}
	problems = appendPrefixed(problems, "sim leg: ", simInv.Violations())

	udpFix, err := BuildISPFixture(seed)
	if err != nil {
		return nil, err
	}
	udpInv := NewInvariants(nil)
	udpInv.Attach(udpFix.Eng)
	handler := func(pkt []byte) [][]byte {
		udpFix.Eng.Inject(udpFix.Edge.Iface(), pkt)
		return udpFix.Edge.Drain()
	}
	drv, err := xmap.NewUDPDriver(udpFix.Edge.Addr(), handler)
	if err != nil {
		return nil, err
	}
	defer drv.Close()
	udpScanner, err := xmap.New(xmap.Config{
		Window: udpFix.Window, Seed: scanSeed(seed), DedupExact: true, DrainEvery: 16,
	}, drv)
	if err != nil {
		return nil, err
	}
	udpSet := map[ipv6.Addr]bool{}
	if _, err := udpScanner.Run(context.Background(), func(r xmap.Response) { udpSet[r.Responder] = true }); err != nil {
		return nil, err
	}
	// UDP delivery is asynchronous: stragglers may still be in flight
	// after Run returns. Re-drain until the sets agree or we time out.
	deadline := time.Now().Add(20 * time.Second)
	for len(udpSet) < len(simSet) && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
		for _, raw := range drv.Recv() {
			sum, err := wire.ParsePacket(raw)
			if err != nil {
				continue
			}
			if resp, ok := (&xmap.ICMPEchoProbe{}).Classify(sum, udpScanner.Validation); ok {
				udpSet[resp.Responder] = true
			}
		}
	}
	problems = appendPrefixed(problems, "udp leg: ", udpInv.Violations())

	for a := range simSet {
		if !udpSet[a] {
			problems = append(problems, fmt.Sprintf("udp driver missed responder %s", a))
		}
	}
	for a := range udpSet {
		if !simSet[a] {
			problems = append(problems, fmt.Sprintf("udp driver found phantom responder %s", a))
		}
	}
	return problems, nil
}

// RunShardOracle runs the same seeded scan against the classic
// single-engine deployment and a sharded EngineGroup deployment of the
// same topology, and diffs everything the sharding must not change:
// the unique responder set, probe counts, total simulation events and
// per-subscriber access-link packet totals. The sharded leg scans
// through ScanParallel so shards genuinely pump concurrently. No faults
// or loss are configured — on a lossless topology the outcome is
// independent of injection interleaving, which is exactly the property
// the oracle pins (per-shard replicas preserve path lengths, so even
// event totals must match). Invariant checkers stay attached on every
// engine; under -race this doubles as a concurrency check on the
// group's tap path.
func RunShardOracle(seed int64, shards int) ([]string, error) {
	var problems []string
	cfg := topo.Config{
		Seed:             seed,
		Scale:            0.0005,
		WindowWidth:      8,
		MaxDevicesPerISP: 25,
		OnlyISPs:         []int{1, 5, 12, 13},
	}

	single, err := topo.Build(cfg)
	if err != nil {
		return nil, err
	}
	cfg.Shards = shards
	sharded, err := topo.Build(cfg)
	if err != nil {
		return nil, err
	}

	singleInv := NewInvariants(nil)
	singleInv.Attach(single.Engine)
	shardedInv := NewInvariants(nil)
	sharded.Group.SetTap(shardedInv.Tap)

	var (
		singleStats, shardedStats xmap.Stats
		singleSet                 = map[ipv6.Addr]bool{}
		shardedSet                = map[ipv6.Addr]bool{}
	)
	for _, isp := range single.ISPs {
		s, err := xmap.New(xmap.Config{Window: isp.Window, Seed: scanSeed(seed)},
			xmap.NewSimDriver(single.Engine, single.Edge))
		if err != nil {
			return nil, err
		}
		stats, err := s.Run(context.Background(), func(r xmap.Response) { singleSet[r.Responder] = true })
		if err != nil {
			return nil, err
		}
		singleStats.Targets += stats.Targets
		singleStats.Sent += stats.Sent
	}
	var mu sync.Mutex
	drv := xmap.NewGroupDriver(sharded.Group, sharded.Edge)
	for _, isp := range sharded.ISPs {
		stats, err := xmap.ScanParallel(context.Background(),
			xmap.Config{Window: isp.Window, Seed: scanSeed(seed)}, drv, shards,
			func(r xmap.Response) {
				mu.Lock()
				shardedSet[r.Responder] = true
				mu.Unlock()
			})
		if err != nil {
			return nil, err
		}
		shardedStats.Targets += stats.Targets
		shardedStats.Sent += stats.Sent
	}

	problems = appendPrefixed(problems, "single leg: ", singleInv.Violations())
	problems = appendPrefixed(problems, "sharded leg: ", shardedInv.Violations())

	if singleStats.Targets != shardedStats.Targets {
		problems = append(problems, fmt.Sprintf("targets diverge: single %d, sharded %d",
			singleStats.Targets, shardedStats.Targets))
	}
	if singleStats.Sent != shardedStats.Sent {
		problems = append(problems, fmt.Sprintf("sent diverges: single %d, sharded %d",
			singleStats.Sent, shardedStats.Sent))
	}
	for a := range singleSet {
		if !shardedSet[a] {
			problems = append(problems, fmt.Sprintf("sharded scan missed responder %s", a))
		}
	}
	for a := range shardedSet {
		if !singleSet[a] {
			problems = append(problems, fmt.Sprintf("sharded scan found phantom responder %s", a))
		}
	}
	// Path lengths are preserved by the per-shard spine replicas, so the
	// total number of simulated events must agree exactly.
	if a, b := single.Engine.Steps(), sharded.Group.Steps(); a != b {
		problems = append(problems, fmt.Sprintf("event totals diverge: single %d, sharded %d", a, b))
	}
	// Per-subscriber link totals: the same probes must have crossed each
	// device's access link, whatever shard served it.
	singleDevs, shardedDevs := single.Devices(), sharded.Devices()
	if len(singleDevs) != len(shardedDevs) {
		problems = append(problems, fmt.Sprintf("device counts diverge: single %d, sharded %d",
			len(singleDevs), len(shardedDevs)))
		return problems, nil
	}
	for i, sd := range singleDevs {
		hd := shardedDevs[i]
		if sd.WANAddr != hd.WANAddr {
			problems = append(problems, fmt.Sprintf("device %d diverges: %s vs %s", i, sd.WANAddr, hd.WANAddr))
			continue
		}
		if a, b := sd.AccessLink.TotalPackets(), hd.AccessLink.TotalPackets(); a != b {
			problems = append(problems, fmt.Sprintf(
				"access-link totals diverge for %s: single %d, sharded %d", sd.WANAddr, a, b))
		}
	}
	return problems, nil
}

func appendPrefixed(dst []string, prefix string, src []string) []string {
	for _, s := range src {
		dst = append(dst, prefix+s)
	}
	return dst
}
