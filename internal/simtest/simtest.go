// Package simtest is a deterministic, seed-driven simulation-testing
// harness (FoundationDB-style DST) over internal/netsim. One explicit
// seed drives the topology, the scan permutation and every fault
// decision, so any failing run replays exactly from the seed printed in
// the test name.
//
// The harness has three layers:
//
//   - fault injection (Injector): seeded packet loss, duplication,
//     reordering, ICMPv6 rate-limit bursts and mid-scan link flaps,
//     installed on an Engine via netsim.Engine.SetFault;
//   - invariant checkers (Invariants): a tap on every simulated link
//     crossing verifying wire checksums, strict hop-limit decrement and
//     the 255-hop amplification circulation cap;
//   - differential oracles (oracles.go / scenarios.go): the same seeded
//     scan run through paired implementations — bloom vs exact dedup,
//     LPM trie vs linear route lookup, sim driver vs loopback UDP
//     driver — with the result sets diffed.
//
// The scenario runner lives in scenario_test.go:
//
//	go test ./internal/simtest -run TestScenarios -seeds 20
package simtest

import (
	"hash/fnv"
	"math/rand"
	"sync"

	"repro/internal/netsim"
	"repro/internal/telemetry"
)

// FaultProfile parameterizes one fault-injection regime. The zero value
// injects nothing.
type FaultProfile struct {
	Name string
	// LossProb drops each transmission independently.
	LossProb float64
	// DupProb delivers each transmission twice.
	DupProb float64
	// ReorderProb defers a transmission past 1..MaxDelay subsequent
	// deliveries.
	ReorderProb float64
	MaxDelay    int
	// ErrBurstPeriod/ErrBurstLen model ICMPv6 rate limiting: during the
	// first ErrBurstLen of every ErrBurstPeriod transmissions, ICMPv6
	// error messages are dropped.
	ErrBurstPeriod int
	ErrBurstLen    int
	// FlapStart/FlapLen model a mid-scan link outage: transmissions
	// numbered [FlapStart, FlapStart+FlapLen) are all dropped.
	FlapStart int
	FlapLen   int
}

// Lossless reports whether every injected packet is eventually
// delivered (duplication and reordering do not lose traffic).
func (p FaultProfile) Lossless() bool {
	return p.LossProb == 0 && p.ErrBurstLen == 0 && p.FlapLen == 0
}

// Active reports whether the profile injects any fault at all. An
// inactive profile leaves the engine's fault layer uninstalled, so the
// fixture exercises the engine's fully fused fast paths (an armed fault
// layer — even a no-op one — forces per-packet interpretation so fault
// decisions land in sequential order).
func (p FaultProfile) Active() bool {
	return p.LossProb > 0 || p.DupProb > 0 || p.ReorderProb > 0 ||
		p.ErrBurstLen > 0 || p.FlapLen > 0
}

// Duplicates reports whether the profile can deliver a packet twice.
func (p FaultProfile) Duplicates() bool { return p.DupProb > 0 }

// Profiles is the sweep set: every fault class the issue names, plus a
// clean baseline and a combined chaos profile.
var Profiles = []FaultProfile{
	{Name: "none"},
	{Name: "loss", LossProb: 0.12},
	{Name: "dup", DupProb: 0.15},
	{Name: "reorder", ReorderProb: 0.35, MaxDelay: 6},
	{Name: "ratelimit", ErrBurstPeriod: 64, ErrBurstLen: 24},
	{Name: "flap", FlapStart: 250, FlapLen: 300},
	{Name: "chaos", LossProb: 0.05, DupProb: 0.08, ReorderProb: 0.2, MaxDelay: 4,
		ErrBurstPeriod: 96, ErrBurstLen: 16},
}

// ProfileByName returns the named profile from Profiles.
func ProfileByName(name string) (FaultProfile, bool) {
	for _, p := range Profiles {
		if p.Name == name {
			return p, true
		}
	}
	return FaultProfile{}, false
}

// InjectorStats counts fault decisions.
type InjectorStats struct {
	Transmissions int
	Dropped       int
	Duplicated    int
	Delayed       int
}

// Injector turns a FaultProfile into a netsim.FaultFunc whose every
// decision comes from one seeded source. Install with
// eng.SetFault(inj.Apply). Safe for concurrent use.
type Injector struct {
	mu      sync.Mutex
	rng     *rand.Rand
	profile FaultProfile
	dups    map[uint64]int
	stats   InjectorStats
}

// NewInjector creates an injector for the profile, seeded independently
// of the engine's own loss source.
func NewInjector(seed int64, p FaultProfile) *Injector {
	return &Injector{
		rng:     rand.New(rand.NewSource(seed ^ 0x5117e57)),
		profile: p,
		dups:    map[uint64]int{},
	}
}

// Apply is the netsim.FaultFunc. Decision order: link flap (drops
// everything in its window), ICMPv6 rate-limit burst (drops error
// messages only), random loss, duplication, reordering.
func (j *Injector) Apply(from *netsim.Iface, pkt []byte) netsim.FaultOutcome {
	j.mu.Lock()
	defer j.mu.Unlock()
	n := j.stats.Transmissions
	j.stats.Transmissions++
	p := j.profile
	if p.FlapLen > 0 && n >= p.FlapStart && n < p.FlapStart+p.FlapLen {
		j.stats.Dropped++
		return netsim.FaultOutcome{Drop: true}
	}
	if p.ErrBurstLen > 0 && p.ErrBurstPeriod > 0 &&
		n%p.ErrBurstPeriod < p.ErrBurstLen && isICMPv6Error(pkt) {
		j.stats.Dropped++
		return netsim.FaultOutcome{Drop: true}
	}
	if p.LossProb > 0 && j.rng.Float64() < p.LossProb {
		j.stats.Dropped++
		return netsim.FaultOutcome{Drop: true}
	}
	if p.DupProb > 0 && j.rng.Float64() < p.DupProb {
		j.stats.Duplicated++
		j.dups[PacketKey(pkt)]++
		return netsim.FaultOutcome{Deliveries: []int{0, 0}}
	}
	if p.ReorderProb > 0 && p.MaxDelay > 0 && j.rng.Float64() < p.ReorderProb {
		j.stats.Delayed++
		return netsim.FaultOutcome{Deliveries: []int{1 + j.rng.Intn(p.MaxDelay)}}
	}
	return netsim.FaultOutcome{}
}

// DupCount reports how many times the flow identified by key was
// duplicated, for the circulation-cap invariant.
func (j *Injector) DupCount(key uint64) int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.dups[key]
}

// Stats returns a snapshot of the decision counters.
func (j *Injector) Stats() InjectorStats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.stats
}

// RegisterTelemetry folds the injector's decision counters into reg's
// snapshots as the inject.* counter group. Like the simulation engine,
// the injector counts under its own lock and the registry reads at
// snapshot time (merge-on-read), so Apply pays no extra atomics.
func (j *Injector) RegisterTelemetry(reg *telemetry.Registry) {
	reg.Register(func(add func(telemetry.Counter, uint64)) {
		s := j.Stats()
		add(telemetry.InjectTransmissions, uint64(s.Transmissions))
		add(telemetry.InjectDropped, uint64(s.Dropped))
		add(telemetry.InjectDuplicated, uint64(s.Duplicated))
		add(telemetry.InjectDelayed, uint64(s.Delayed))
	})
}

// PacketKey identifies an IPv6 packet's flow across hops: a hash of next
// header, source, destination and the layer-4 bytes. The hop limit
// (byte 7) is deliberately excluded — it is the only field forwarding
// mutates, so the key is stable along the packet's whole path.
func PacketKey(pkt []byte) uint64 {
	h := fnv.New64a()
	if len(pkt) >= 40 && pkt[0]>>4 == 6 {
		h.Write(pkt[6:7])
		h.Write(pkt[8:])
	} else {
		h.Write(pkt)
	}
	return h.Sum64()
}

// isICMPv6Error reports whether pkt is an ICMPv6 error message (type <
// 128), the class real routers rate-limit per RFC 4443 §2.4.
func isICMPv6Error(pkt []byte) bool {
	return len(pkt) > 40 && pkt[0]>>4 == 6 && pkt[6] == 58 && pkt[40] < 128
}
