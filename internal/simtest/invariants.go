package simtest

import (
	"fmt"
	"sync"

	"repro/internal/netsim"
	"repro/internal/wire"
)

// hopKey identifies one flow crossing one link direction.
type hopKey struct {
	key  uint64
	from *netsim.Iface
}

// hopState tracks one flow on one link direction: the frontiers of the
// strictly-decreasing hop-limit chains in flight, and every hop-limit
// value ever observed (a 256-bit set).
type hopState struct {
	frontiers []uint8
	seen      [4]uint64
}

func (s *hopState) sawBefore(h uint8) bool { return s.seen[h>>6]&(1<<(h&63)) != 0 }
func (s *hopState) mark(h uint8)           { s.seen[h>>6] |= 1 << (h & 63) }

// Invariants is a netsim tap checking, on every link crossing, the
// packet-level properties the paper's measurements rest on:
//
//   - the packet parses and every layer checksum verifies on the wire;
//   - hop limits strictly decrement: each walker of a flow re-crossing
//     the same link direction must continue a strictly-decreasing
//     chain. Duplicated (or legitimately retransmitted) packets are
//     byte-identical and replay a suffix of an earlier walker's
//     trajectory, so a crossing may instead open a new chain at a
//     previously-observed value — but a hop limit above or off every
//     known trajectory is a violation;
//   - no flow circulates past the 255-crossing amplification cap of
//     Section VI-A (scaled by how often the fault layer duplicated the
//     flow, since each duplicate may circulate on its own).
//
// Install with iv.Attach(eng). Safe for concurrent use; violations
// accumulate and are read at the end of a run.
type Invariants struct {
	mu sync.Mutex
	// dupCount (optional) reports per-flow duplication by the fault
	// layer, scaling the circulation cap.
	dupCount    func(key uint64) int
	chains      map[hopKey]*hopState
	crossings   map[uint64]int
	capReported map[uint64]bool
	taps        int
	violations  []string
}

// NewInvariants creates a checker; dupCount may be nil when no
// duplication faults are in play.
func NewInvariants(dupCount func(uint64) int) *Invariants {
	return &Invariants{
		dupCount:    dupCount,
		chains:      map[hopKey]*hopState{},
		crossings:   map[uint64]int{},
		capReported: map[uint64]bool{},
	}
}

// Attach installs the checker as the engine's tap.
func (iv *Invariants) Attach(e *netsim.Engine) { e.SetTap(iv.Tap) }

// Tap is the netsim.TapFunc: called for every link transmission,
// including ones the loss/fault layer then discards.
func (iv *Invariants) Tap(from *netsim.Iface, pkt []byte, dropped bool) {
	iv.mu.Lock()
	defer iv.mu.Unlock()
	iv.taps++
	if len(pkt) > 0 && pkt[0]>>4 == 4 {
		return // IPv4 leg of a dual-stack topology: out of scope here
	}
	if _, err := wire.ParsePacket(pkt); err != nil {
		iv.violationf("invalid packet on wire from %s: %v", from.Name(), err)
		return
	}
	key := PacketKey(pkt)

	iv.crossings[key]++
	limit := 255
	if iv.dupCount != nil {
		limit *= 1 + iv.dupCount(key)
	}
	if iv.crossings[key] > limit && !iv.capReported[key] {
		iv.capReported[key] = true
		iv.violationf("flow %016x circulated past the %d-crossing amplification cap", key, limit)
	}

	h := pkt[7]
	hk := hopKey{key: key, from: from}
	st := iv.chains[hk]
	if st == nil {
		st = &hopState{}
		iv.chains[hk] = st
	}
	// Extend the chain whose frontier is the smallest value still above
	// h (tightest fit: if any assignment of crossings to decreasing
	// chains exists, this greedy one finds it).
	best := -1
	for i, f := range st.frontiers {
		if f > h && (best < 0 || f < st.frontiers[best]) {
			best = i
		}
	}
	switch {
	case best >= 0:
		st.frontiers[best] = h
	case len(st.frontiers) == 0 || st.sawBefore(h):
		st.frontiers = append(st.frontiers, h)
	default:
		iv.violationf("hop limit not decreasing on %s: frontiers %v then %d (flow %016x)",
			from.Name(), st.frontiers, h, key)
	}
	st.mark(h)
}

// Taps returns how many transmissions the checker observed.
func (iv *Invariants) Taps() int {
	iv.mu.Lock()
	defer iv.mu.Unlock()
	return iv.taps
}

// Violations returns every invariant violation recorded so far.
func (iv *Invariants) Violations() []string {
	iv.mu.Lock()
	defer iv.mu.Unlock()
	return append([]string(nil), iv.violations...)
}

func (iv *Invariants) violationf(format string, args ...any) {
	iv.violations = append(iv.violations, fmt.Sprintf(format, args...))
}
