package simtest

import (
	"context"
	"encoding/binary"
	"fmt"

	"repro/internal/ipv6"
	"repro/internal/netsim"
	"repro/internal/xmap"
)

// fastPathLeg is one leg of the compiled-vs-interpreted oracle: the
// results of two back-to-back scans of one fixture plus every
// engine-side statistic a compiled replay must charge identically to
// sequential forwarding. Two passes because the fixture's delegation
// granularity is /64 and each pass probes every /64 once: pass one
// exercises cold compilation, pass two replays the warm cache.
type fastPathLeg struct {
	stats    [2]xmap.Stats
	set      map[ipv6.Addr]bool
	counters netsim.Counters
	links    []fastPathLink
	trace    *traceCollector
}

// hopRec is one recorded link crossing of a traced flow.
type hopRec struct {
	node, iface string
	hop         uint8
	drop        bool
}

// traceCollector is the oracle's netsim.FlowTracer: it samples every
// flow and keeps each flow's full (node, iface, hop-limit) crossing
// sequence, so the compiled fast path's synthesized traces can be
// diffed hop for hop against the interpreted reference.
type traceCollector struct {
	flows map[[16]byte][]hopRec
	total uint64
}

func newTraceCollector() *traceCollector {
	return &traceCollector{flows: map[[16]byte][]hopRec{}}
}

func (t *traceCollector) SampleFlow(hi, lo uint64) bool { return true }

func (t *traceCollector) HopCrossing(hi, lo uint64, node, iface string, hop uint8, drop bool) {
	var k [16]byte
	binary.BigEndian.PutUint64(k[:8], hi)
	binary.BigEndian.PutUint64(k[8:], lo)
	t.flows[k] = append(t.flows[k], hopRec{node: node, iface: iface, hop: hop, drop: drop})
	t.total++
}

// fastPathLink is one link's per-direction transmission counters,
// labeled by endpoint interface names (identical seeds build identical
// topologies, so legs correspond link-for-link in connection order).
type fastPathLink struct {
	ends  [2]string
	stats [2]netsim.LinkStats
}

// chunkDriver splits every SendBatch into sub-batches of at most n
// packets before handing them to the underlying driver, forcing the
// engine to see a chosen batch size regardless of the scanner's drain
// window. n = 1 is the per-probe injection path.
type chunkDriver struct {
	under xmap.Driver
	n     int
}

func (c *chunkDriver) SendBatch(pkts [][]byte) (int, error) {
	sent := 0
	for len(pkts) > 0 {
		m := min(c.n, len(pkts))
		k, err := c.under.SendBatch(pkts[:m])
		sent += k
		if err != nil || k < m {
			return sent, err
		}
		pkts = pkts[m:]
	}
	return sent, nil
}

func (c *chunkDriver) RecvBatch(buf [][]byte) [][]byte { return c.under.RecvBatch(buf) }
func (c *chunkDriver) SourceAddr() ipv6.Addr           { return c.under.SourceAddr() }

// Release forwards buffer recycling when the underlying driver supports
// it, so chunked legs keep the zero-alloc buffer loop.
func (c *chunkDriver) Release(pkts [][]byte) {
	if r, ok := c.under.(xmap.Releaser); ok {
		r.Release(pkts)
	}
}

// runFastPathLeg scans one freshly built, identically seeded fault
// world twice with the engine's compiled forwarding fast path on or
// off. batch > 0 caps the engine-visible send batch size via
// chunkDriver; 0 leaves the scanner's native bursts intact.
func runFastPathLeg(seed int64, p FaultProfile, fastpath bool, batch int) (fastPathLeg, error) {
	f, err := reliabilityFixture(seed, p)
	if err != nil {
		return fastPathLeg{}, err
	}
	return scanFastPathLeg(f, seed, fastpath, batch)
}

// scanFastPathLeg runs the two-pass fast-path scan over an already
// built fixture.
func scanFastPathLeg(f *ISPFixture, seed int64, fastpath bool, batch int) (fastPathLeg, error) {
	f.Eng.SetFastPath(fastpath)
	var drv xmap.Driver = f.Drv
	if batch > 0 {
		drv = &chunkDriver{under: f.Drv, n: batch}
	}
	leg := fastPathLeg{set: map[ipv6.Addr]bool{}, trace: newTraceCollector()}
	f.Eng.SetFlowTracer(leg.trace)
	for pass := 0; pass < 2; pass++ {
		seedTag := append(scanSeed(seed), byte('a'+pass))
		s, err := xmap.New(xmap.Config{Window: f.Window, Seed: seedTag, DedupExact: true}, drv)
		if err != nil {
			return fastPathLeg{}, err
		}
		leg.stats[pass], err = s.Run(context.Background(), func(r xmap.Response) { leg.set[r.Responder] = true })
		if err != nil {
			return fastPathLeg{}, err
		}
	}
	leg.counters = f.Eng.Counters()
	for _, l := range f.Eng.Links() {
		ends := l.Ends()
		leg.links = append(leg.links, fastPathLink{
			ends:  [2]string{ends[0].Name(), ends[1].Name()},
			stats: [2]netsim.LinkStats{l.StatsFrom(ends[0]), l.StatsFrom(ends[1])},
		})
	}
	return leg, nil
}

// diffFastPathLegs compares one leg against the interpreted reference:
// dedup accounting per pass, engine totals, the responder set, and
// every link's per-direction stats must be identical.
func diffFastPathLegs(name string, got, ref fastPathLeg) []string {
	var problems []string
	type check struct {
		field    string
		got, ref uint64
	}
	checks := []check{
		{"Transmissions", got.counters.Transmissions, ref.counters.Transmissions},
		{"Bytes", got.counters.Bytes, ref.counters.Bytes},
		{"Dropped", got.counters.Dropped, ref.counters.Dropped},
	}
	for pass := 0; pass < 2; pass++ {
		g, r := got.stats[pass], ref.stats[pass]
		tag := fmt.Sprintf("pass %d ", pass+1)
		checks = append(checks,
			check{tag + "Sent", g.Sent, r.Sent},
			check{tag + "Received", g.Received, r.Received},
			check{tag + "Unique", g.Unique, r.Unique},
			check{tag + "Duplicates", g.Duplicates, r.Duplicates},
			check{tag + "Invalid", g.Invalid, r.Invalid},
		)
	}
	for _, c := range checks {
		if c.got != c.ref {
			problems = append(problems, fmt.Sprintf(
				"%s leg %s = %d, interpreted %d", name, c.field, c.got, c.ref))
		}
	}
	for a := range ref.set {
		if !got.set[a] {
			problems = append(problems, fmt.Sprintf("%s leg missed responder %s", name, a))
		}
	}
	for a := range got.set {
		if !ref.set[a] {
			problems = append(problems, fmt.Sprintf("%s leg found phantom responder %s", name, a))
		}
	}
	if len(got.links) != len(ref.links) {
		problems = append(problems, fmt.Sprintf(
			"%s leg link counts differ: %d vs %d (fixtures diverged)", name, len(got.links), len(ref.links)))
		return problems
	}
	for i := range got.links {
		a, b := got.links[i], ref.links[i]
		for end := 0; end < 2; end++ {
			if a.ends[end] != b.ends[end] {
				problems = append(problems, fmt.Sprintf(
					"%s leg link %d endpoint %d is %s vs %s (fixtures diverged)", name, i, end, a.ends[end], b.ends[end]))
				continue
			}
			if a.stats[end] != b.stats[end] {
				problems = append(problems, fmt.Sprintf(
					"%s leg link %s->%s stats %+v, interpreted %+v",
					name, a.ends[end], a.ends[1-end], a.stats[end], b.stats[end]))
			}
		}
	}
	if got.trace != nil && ref.trace != nil {
		problems = append(problems, diffFlowTraces(name, got.trace, ref.trace)...)
	}
	return problems
}

// diffFlowTraces is the trace-parity leg: every traced flow must have
// recorded an identical (node, iface, hop-limit, drop) crossing
// sequence on both legs — the compiled path's synthesized hops against
// the interpreted reference. Bounded reporting: systematic divergence
// would otherwise flood the failure with one line per flow.
func diffFlowTraces(name string, got, ref *traceCollector) []string {
	var problems []string
	const maxReports = 10
	report := func(format string, args ...any) {
		if len(problems) < maxReports {
			problems = append(problems, fmt.Sprintf(format, args...))
		}
	}
	if len(got.flows) != len(ref.flows) {
		report("%s leg traced %d flows, interpreted %d", name, len(got.flows), len(ref.flows))
	}
	mismatched := 0
	for k, rseq := range ref.flows {
		gseq, ok := got.flows[k]
		if !ok {
			mismatched++
			report("%s leg has no trace for flow %s", name, ipv6.AddrFromBytes(k[:]))
			continue
		}
		if len(gseq) != len(rseq) {
			mismatched++
			report("%s leg flow %s crossed %d hops, interpreted %d",
				name, ipv6.AddrFromBytes(k[:]), len(gseq), len(rseq))
			continue
		}
		for i := range rseq {
			if gseq[i] != rseq[i] {
				mismatched++
				report("%s leg flow %s hop %d = %+v, interpreted %+v",
					name, ipv6.AddrFromBytes(k[:]), i, gseq[i], rseq[i])
				break
			}
		}
	}
	for k := range got.flows {
		if _, ok := ref.flows[k]; !ok {
			mismatched++
			report("%s leg traced phantom flow %s", name, ipv6.AddrFromBytes(k[:]))
		}
	}
	if mismatched > maxReports {
		problems = append(problems, fmt.Sprintf(
			"%s leg trace parity: %d flows diverged in total", name, mismatched))
	}
	return problems
}

// RunFastPathOracle is the compiled-vs-interpreted differential oracle:
// the same seeded scan, against the same seeded fault world, with the
// netsim flow cache on (fused replays) and off (every crossing
// interpreted). The fast path must be invisible to everything except
// the event count: identical responder sets, identical dedup accounting,
// identical engine transmission/byte/drop totals, and identical
// per-link per-direction stats under EVERY fault profile — which only
// holds because replay charges stats and consumes fault-RNG draws in
// exactly the interpreted order. Counters.Events is deliberately NOT
// compared: collapsing ~13 events per probe into one fused event is the
// fast path's entire point.
//
// The same interpreted reference also judges the batched replay: extra
// fast-path legs rerun the scan with the engine-visible send batch
// clamped to 1, 7 (odd, straddles drain windows), 64 (the scanner's
// native drain window) and netsim.InjectRunLen (the resolve-run scratch
// size, so larger bursts span multiple locked runs). The aggregated
// charging in InjectBatch must be invisible at every batch size — in
// particular batch 1 pins that a trivial batch and the per-probe path
// agree, so batched-vs-per-probe equivalence is transitive through the
// reference.
func RunFastPathOracle(seed int64, p FaultProfile) ([]string, error) {
	on, err := runFastPathLeg(seed, p, true, 0)
	if err != nil {
		return nil, err
	}
	off, err := runFastPathLeg(seed, p, false, 0)
	if err != nil {
		return nil, err
	}

	problems := diffFastPathLegs("fastpath", on, off)
	// The comparison is only meaningful if each leg took the path it
	// claims: fused replays on one side, none on the other.
	if on.counters.FastPathHits == 0 {
		problems = append(problems, "fastpath leg recorded zero flow-cache hits: fast path never engaged")
	}
	// The trace-parity comparison is only meaningful if the compiled leg
	// actually captured crossings (i.e. fused replays synthesized them
	// rather than silencing the tracer).
	if on.trace.total == 0 {
		problems = append(problems, "fastpath leg captured zero flow crossings: trace synthesis never engaged")
	}
	if off.counters.FastPathHits != 0 || off.counters.FastPathMisses != 0 {
		problems = append(problems, fmt.Sprintf(
			"interpreted leg recorded flow-cache traffic (%d hits, %d misses): SetFastPath(false) leaked",
			off.counters.FastPathHits, off.counters.FastPathMisses))
	}
	if on.counters.Events >= off.counters.Events {
		problems = append(problems, fmt.Sprintf(
			"fastpath leg pumped %d events, interpreted %d: fusing saved nothing",
			on.counters.Events, off.counters.Events))
	}

	for _, bs := range []int{1, 7, 64, netsim.InjectRunLen} {
		name := fmt.Sprintf("fastpath[batch=%d]", bs)
		leg, err := runFastPathLeg(seed, p, true, bs)
		if err != nil {
			return nil, err
		}
		problems = append(problems, diffFastPathLegs(name, leg, off)...)
		if leg.counters.FastPathHits == 0 {
			problems = append(problems, name+" leg recorded zero flow-cache hits: fast path never engaged")
		}
		// A fault-free world must actually exercise the batched resolve
		// path (profiles with an armed fault layer legitimately fall
		// back to per-packet interpretation).
		if !p.Active() && leg.counters.FastPathBatched == 0 {
			problems = append(problems, name+" leg replayed zero probes through the batched path")
		}
	}

	// Hostile legs: the flow cache must stay invisible under every
	// adversarial responder model too. Hostile nodes install no compile
	// hooks, so their flows fall back to interpreted delivery (a negative
	// cache entry) while the honest flows still compile — the on leg must
	// therefore still record cache hits. Run once per seed, on the
	// fault-free profile, so the hostile sweep doesn't multiply the fault
	// sweep.
	if !p.Active() {
		for _, hp := range HostileProfiles {
			if hp.Mode == 0 {
				continue
			}
			name := "fastpath[hostile=" + hp.Name + "]"
			build := func(fastpath bool) (fastPathLeg, error) {
				f, err := BuildHostileFixture(seed, hp)
				if err != nil {
					return fastPathLeg{}, err
				}
				return scanFastPathLeg(f, seed, fastpath, 0)
			}
			hon, err := build(true)
			if err != nil {
				return nil, err
			}
			hoff, err := build(false)
			if err != nil {
				return nil, err
			}
			problems = append(problems, diffFastPathLegs(name, hon, hoff)...)
			if hon.counters.FastPathHits == 0 {
				problems = append(problems, name+" leg recorded zero flow-cache hits: fast path never engaged")
			}
		}
	}
	return problems, nil
}
