package simtest

import (
	"context"
	"fmt"

	"repro/internal/ipv6"
	"repro/internal/netsim"
	"repro/internal/xmap"
)

// fastPathLeg is one leg of the compiled-vs-interpreted oracle: the
// results of two back-to-back scans of one fixture plus every
// engine-side statistic a compiled replay must charge identically to
// sequential forwarding. Two passes because the fixture's delegation
// granularity is /64 and each pass probes every /64 once: pass one
// exercises cold compilation, pass two replays the warm cache.
type fastPathLeg struct {
	stats    [2]xmap.Stats
	set      map[ipv6.Addr]bool
	counters netsim.Counters
	links    []fastPathLink
}

// fastPathLink is one link's per-direction transmission counters,
// labeled by endpoint interface names (identical seeds build identical
// topologies, so legs correspond link-for-link in connection order).
type fastPathLink struct {
	ends  [2]string
	stats [2]netsim.LinkStats
}

// runFastPathLeg scans one freshly built, identically seeded fault
// world twice with the engine's compiled forwarding fast path on or
// off.
func runFastPathLeg(seed int64, p FaultProfile, fastpath bool) (fastPathLeg, error) {
	f, err := reliabilityFixture(seed, p)
	if err != nil {
		return fastPathLeg{}, err
	}
	f.Eng.SetFastPath(fastpath)
	leg := fastPathLeg{set: map[ipv6.Addr]bool{}}
	for pass := 0; pass < 2; pass++ {
		seedTag := append(scanSeed(seed), byte('a'+pass))
		s, err := xmap.New(xmap.Config{Window: f.Window, Seed: seedTag, DedupExact: true}, f.Drv)
		if err != nil {
			return fastPathLeg{}, err
		}
		leg.stats[pass], err = s.Run(context.Background(), func(r xmap.Response) { leg.set[r.Responder] = true })
		if err != nil {
			return fastPathLeg{}, err
		}
	}
	leg.counters = f.Eng.Counters()
	for _, l := range f.Eng.Links() {
		ends := l.Ends()
		leg.links = append(leg.links, fastPathLink{
			ends:  [2]string{ends[0].Name(), ends[1].Name()},
			stats: [2]netsim.LinkStats{l.StatsFrom(ends[0]), l.StatsFrom(ends[1])},
		})
	}
	return leg, nil
}

// RunFastPathOracle is the compiled-vs-interpreted differential oracle:
// the same seeded scan, against the same seeded fault world, with the
// netsim flow cache on (fused replays) and off (every crossing
// interpreted). The fast path must be invisible to everything except
// the event count: identical responder sets, identical dedup accounting,
// identical engine transmission/byte/drop totals, and identical
// per-link per-direction stats under EVERY fault profile — which only
// holds because replay charges stats and consumes fault-RNG draws in
// exactly the interpreted order. Counters.Events is deliberately NOT
// compared: collapsing ~13 events per probe into one fused event is the
// fast path's entire point.
func RunFastPathOracle(seed int64, p FaultProfile) ([]string, error) {
	on, err := runFastPathLeg(seed, p, true)
	if err != nil {
		return nil, err
	}
	off, err := runFastPathLeg(seed, p, false)
	if err != nil {
		return nil, err
	}

	var problems []string
	type check struct {
		field    string
		got, ref uint64
	}
	checks := []check{
		{"Transmissions", on.counters.Transmissions, off.counters.Transmissions},
		{"Bytes", on.counters.Bytes, off.counters.Bytes},
		{"Dropped", on.counters.Dropped, off.counters.Dropped},
	}
	for pass := 0; pass < 2; pass++ {
		g, r := on.stats[pass], off.stats[pass]
		tag := fmt.Sprintf("pass %d ", pass+1)
		checks = append(checks,
			check{tag + "Sent", g.Sent, r.Sent},
			check{tag + "Received", g.Received, r.Received},
			check{tag + "Unique", g.Unique, r.Unique},
			check{tag + "Duplicates", g.Duplicates, r.Duplicates},
			check{tag + "Invalid", g.Invalid, r.Invalid},
		)
	}
	for _, c := range checks {
		if c.got != c.ref {
			problems = append(problems, fmt.Sprintf(
				"fastpath leg %s = %d, interpreted %d", c.field, c.got, c.ref))
		}
	}
	for a := range off.set {
		if !on.set[a] {
			problems = append(problems, fmt.Sprintf("fastpath leg missed responder %s", a))
		}
	}
	for a := range on.set {
		if !off.set[a] {
			problems = append(problems, fmt.Sprintf("fastpath leg found phantom responder %s", a))
		}
	}
	if len(on.links) != len(off.links) {
		problems = append(problems, fmt.Sprintf(
			"leg link counts differ: %d vs %d (fixtures diverged)", len(on.links), len(off.links)))
	} else {
		for i := range on.links {
			a, b := on.links[i], off.links[i]
			for end := 0; end < 2; end++ {
				if a.ends[end] != b.ends[end] {
					problems = append(problems, fmt.Sprintf(
						"link %d endpoint %d is %s vs %s (fixtures diverged)", i, end, a.ends[end], b.ends[end]))
					continue
				}
				if a.stats[end] != b.stats[end] {
					problems = append(problems, fmt.Sprintf(
						"link %s->%s stats %+v with fastpath, %+v interpreted",
						a.ends[end], a.ends[1-end], a.stats[end], b.stats[end]))
				}
			}
		}
	}
	// The comparison is only meaningful if each leg took the path it
	// claims: fused replays on one side, none on the other.
	if on.counters.FastPathHits == 0 {
		problems = append(problems, "fastpath leg recorded zero flow-cache hits: fast path never engaged")
	}
	if off.counters.FastPathHits != 0 || off.counters.FastPathMisses != 0 {
		problems = append(problems, fmt.Sprintf(
			"interpreted leg recorded flow-cache traffic (%d hits, %d misses): SetFastPath(false) leaked",
			off.counters.FastPathHits, off.counters.FastPathMisses))
	}
	if on.counters.Events >= off.counters.Events {
		problems = append(problems, fmt.Sprintf(
			"fastpath leg pumped %d events, interpreted %d: fusing saved nothing",
			on.counters.Events, off.counters.Events))
	}
	return problems, nil
}
