package simtest

import (
	"strings"
	"testing"

	"repro/internal/telemetry"
)

func traceEvents(n int) []telemetry.Event {
	ev := make([]telemetry.Event, n)
	for i := range ev {
		ev[i] = telemetry.Event{
			Seq: uint64(i), Clock: uint64(i * 2), Kind: telemetry.EvProbeSent,
			Addr: [16]byte{0x20, 0x01, 0x0d, 0xb8, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, byte(i)},
			Arg:  uint64(i),
		}
	}
	return ev
}

// TestAttachTraceTailsEvents: a failing problem list gains one entry
// holding the last k recorder events, newest-last.
func TestAttachTraceTailsEvents(t *testing.T) {
	problems := AttachTrace([]string{"stats diverged"}, traceEvents(40), 5)
	if len(problems) != 2 {
		t.Fatalf("got %d problems, want the original plus the trace", len(problems))
	}
	tail := problems[1]
	if !strings.Contains(tail, "flight recorder (last 5 events):") {
		t.Errorf("missing header: %q", tail)
	}
	if !strings.Contains(tail, "#35") || !strings.Contains(tail, "#39") {
		t.Errorf("tail does not span events 35..39: %q", tail)
	}
	if strings.Contains(tail, "#34") {
		t.Errorf("tail includes event before the window: %q", tail)
	}
	if !strings.Contains(tail, "probe") || !strings.Contains(tail, "addr=2001:db8::27") {
		t.Errorf("event line missing kind or address: %q", tail)
	}
}

// TestAttachTraceNoOps: clean runs and empty recorders leave the
// problem list untouched; k<=0 defaults to 16.
func TestAttachTraceNoOps(t *testing.T) {
	if got := AttachTrace(nil, traceEvents(3), 5); got != nil {
		t.Errorf("clean run grew problems: %v", got)
	}
	if got := AttachTrace([]string{"p"}, nil, 5); len(got) != 1 {
		t.Errorf("empty recorder changed problems: %v", got)
	}
	got := AttachTrace([]string{"p"}, traceEvents(40), 0)
	if !strings.Contains(got[1], "last 16 events") {
		t.Errorf("default tail is not 16: %q", got[1])
	}
	// Fewer events than k: take them all.
	got = AttachTrace([]string{"p"}, traceEvents(3), 16)
	if !strings.Contains(got[1], "last 3 events") {
		t.Errorf("short recorder not fully included: %q", got[1])
	}
}

// TestDiscoveryFailureCarriesTrace: when a discovery scenario reports a
// problem, the message set includes the run's packet-level tail — the
// acceptance property that failures are replayable AND readable. The
// run itself is clean, so the check injects a synthetic problem through
// the same AttachTrace path the scenario uses.
func TestDiscoveryFailureCarriesTrace(t *testing.T) {
	run, err := runDiscovery(3, FaultProfile{Name: "none"}, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Events) == 0 {
		t.Fatal("discovery run recorded no flight-recorder events")
	}
	problems := AttachTrace([]string{"synthetic failure"}, run.Events, 16)
	if len(problems) != 2 {
		t.Fatalf("got %d problems, want 2", len(problems))
	}
	tail := problems[1]
	if !strings.Contains(tail, "flight recorder") {
		t.Fatalf("failure message lacks the recorder tail: %q", tail)
	}
	// The tail of a scan ends in receive-side events with real addresses.
	if !strings.Contains(tail, "addr=") {
		t.Errorf("recorder tail carries no addresses: %q", tail)
	}
	// The scenario's snapshot view covers all three layers of the stack.
	if run.Snapshot == nil {
		t.Fatal("discovery run has no telemetry snapshot")
	}
	if run.Snapshot.Counters[telemetry.ScanSent.String()] != run.Stats.Sent {
		t.Errorf("snapshot scan.sent = %d, stats say %d",
			run.Snapshot.Counters[telemetry.ScanSent.String()], run.Stats.Sent)
	}
	if run.Snapshot.Counters[telemetry.InjectTransmissions.String()] == 0 {
		t.Error("inject.transmissions = 0: injector collector not registered")
	}
	if run.Snapshot.Counters[telemetry.SimTransmissions.String()] == 0 {
		t.Error("sim.transmissions = 0: engine collector not registered")
	}
}
