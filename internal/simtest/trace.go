package simtest

import (
	"fmt"
	"strings"

	"repro/internal/ipv6"
	"repro/internal/telemetry"
)

// AttachTrace appends the tail of a scan's flight-recorder stream to a
// failing scenario's problem list, so a seed-replayable failure carries
// the packet-level moments leading up to it (what was probed, what
// answered, which retries fired) instead of just the final counts. A
// clean run (no problems) or an empty recorder returns problems
// unchanged. k bounds the tail (<=0 means 16).
func AttachTrace(problems []string, events []telemetry.Event, k int) []string {
	if len(problems) == 0 || len(events) == 0 {
		return problems
	}
	if k <= 0 {
		k = 16
	}
	if len(events) > k {
		events = events[len(events)-k:]
	}
	var b strings.Builder
	fmt.Fprintf(&b, "flight recorder (last %d events):", len(events))
	for _, e := range events {
		fmt.Fprintf(&b, "\n  #%d clock=%d %s", e.Seq, e.Clock, e.Kind)
		if e.Addr != ([16]byte{}) {
			fmt.Fprintf(&b, " addr=%s", ipv6.AddrFromBytes(e.Addr[:]))
		}
		fmt.Fprintf(&b, " arg=%d", e.Arg)
	}
	return append(problems, b.String())
}
