package simtest

import (
	"context"
	"fmt"

	"repro/internal/ipv6"
	"repro/internal/loopscan"
	"repro/internal/subnet"
	"repro/internal/telemetry"
	"repro/internal/xmap"
)

// DiscoveryRun is one seeded xmap scan over the ISP fixture under one
// fault profile.
type DiscoveryRun struct {
	Stats xmap.Stats
	// Order is every responder in handler-callback order; Set is the
	// same as a set. If the two disagree in size, dedup double-counted.
	Order []ipv6.Addr
	Set   map[ipv6.Addr]bool
	// ProbeDsts is every destination the scanner actually probed.
	ProbeDsts []ipv6.Addr
	// Violations are the invariant-checker findings for the run.
	Violations []string
	// Events is the run's flight-recorder stream, attached to failure
	// messages via AttachTrace.
	Events []telemetry.Event
	// Snapshot is the run's merged telemetry view (scan, engine and
	// injector counters in one document).
	Snapshot *telemetry.Snapshot
}

// runDiscovery performs one scan with the chosen dedup implementation.
func runDiscovery(seed int64, p FaultProfile, exact bool) (DiscoveryRun, error) {
	out := DiscoveryRun{Set: map[ipv6.Addr]bool{}}
	f, err := BuildISPFixture(seed)
	if err != nil {
		return out, err
	}
	inj := NewInjector(seed, p)
	iv := NewInvariants(inj.DupCount)
	f.Eng.SetFault(inj.Apply)
	iv.Attach(f.Eng)
	rec := &recordingDriver{Driver: f.Drv}
	reg := telemetry.New(telemetry.Options{Shards: 1, TraceDepth: 512})
	inj.RegisterTelemetry(reg)
	f.Drv.RegisterTelemetry(reg)
	s, err := xmap.New(xmap.Config{
		Window: f.Window, Seed: scanSeed(seed), DedupExact: exact,
		Telemetry: reg,
	}, rec)
	if err != nil {
		return out, err
	}
	stats, err := s.Run(context.Background(), func(r xmap.Response) {
		out.Order = append(out.Order, r.Responder)
		out.Set[r.Responder] = true
	})
	if err != nil {
		return out, err
	}
	out.Stats = stats
	out.ProbeDsts = rec.dsts
	out.Violations = iv.Violations()
	out.Events = reg.Events()
	out.Snapshot = reg.Snapshot()
	return out, nil
}

// RunDiscoveryScenario scans the ISP fixture under the profile three
// times — exact dedup, bloom dedup, and an exact replay — and checks
// every harness property: wire invariants, hits-are-real, dedup doesn't
// double-count, completeness on lossless profiles, bloom-vs-exact set
// equality, trie-vs-linear route agreement over the probed addresses,
// and bit-exact replay determinism.
func RunDiscoveryScenario(seed int64, p FaultProfile) ([]string, error) {
	exact, err := runDiscovery(seed, p, true)
	if err != nil {
		return nil, err
	}
	bloom, err := runDiscovery(seed, p, false)
	if err != nil {
		return nil, err
	}
	replay, err := runDiscovery(seed, p, true)
	if err != nil {
		return nil, err
	}
	var problems []string
	problems = appendPrefixed(problems, "exact run: ", exact.Violations)
	problems = appendPrefixed(problems, "bloom run: ", bloom.Violations)

	// Sends are unaffected by receive-side faults.
	if exact.Stats.Sent != 256 {
		problems = append(problems, fmt.Sprintf("sent %d probes, want 256", exact.Stats.Sent))
	}
	// Dedup never double-counts: the handler sees each responder once.
	if len(exact.Order) != len(exact.Set) {
		problems = append(problems, fmt.Sprintf(
			"exact dedup double-counted: %d callbacks for %d responders", len(exact.Order), len(exact.Set)))
	}
	if exact.Stats.Unique != uint64(len(exact.Order)) {
		problems = append(problems, fmt.Sprintf(
			"stats.Unique %d != %d handler callbacks", exact.Stats.Unique, len(exact.Order)))
	}
	// Every scanner hit corresponds to a real periphery (or the ISP
	// router answering for unassigned space).
	f, err := BuildISPFixture(seed)
	if err != nil {
		return nil, err
	}
	truth := f.Truth()
	for a := range exact.Set {
		if !truth[a] {
			problems = append(problems, fmt.Sprintf("phantom responder %s not in ground truth", a))
		}
	}
	// Lossless profiles must discover the complete truth.
	if p.Lossless() {
		for a := range truth {
			if !exact.Set[a] {
				problems = append(problems, fmt.Sprintf("lossless profile missed responder %s", a))
			}
		}
	}
	// Oracle: bloom dedup and exact dedup see identical traffic, so the
	// responder sets must match even under faults.
	for a := range exact.Set {
		if !bloom.Set[a] {
			problems = append(problems, fmt.Sprintf("bloom dedup missed responder %s", a))
		}
	}
	for a := range bloom.Set {
		if !exact.Set[a] {
			problems = append(problems, fmt.Sprintf("bloom dedup invented responder %s", a))
		}
	}
	// Oracle: LPM trie vs linear lookup over the scan's probe targets.
	problems = append(problems, DiffRouteLookups(f.Routes, exact.ProbeDsts)...)
	// Determinism: an identical replay produces the identical result
	// sequence.
	if len(replay.Order) != len(exact.Order) {
		problems = append(problems, fmt.Sprintf(
			"replay diverged: %d responders vs %d", len(replay.Order), len(exact.Order)))
	} else {
		for i := range exact.Order {
			if exact.Order[i] != replay.Order[i] {
				problems = append(problems, fmt.Sprintf(
					"replay diverged at result %d: %s vs %s", i, exact.Order[i], replay.Order[i]))
				break
			}
		}
	}
	if exact.Stats.Received != replay.Stats.Received || exact.Stats.Duplicates != replay.Stats.Duplicates {
		problems = append(problems, "replay diverged in receive statistics")
	}
	// Oracle: the telemetry counters are a second, independently
	// maintained account of the same run — they must agree with the
	// scanner's Stats exactly.
	for _, chk := range []struct {
		counter telemetry.Counter
		want    uint64
	}{
		{telemetry.ScanTargets, exact.Stats.Targets},
		{telemetry.ScanSent, exact.Stats.Sent},
		{telemetry.ScanReceived, exact.Stats.Received},
		{telemetry.ScanDuplicates, exact.Stats.Duplicates},
		{telemetry.ScanUnique, exact.Stats.Unique},
	} {
		if got := exact.Snapshot.Counters[chk.counter.String()]; got != chk.want {
			problems = append(problems, fmt.Sprintf(
				"telemetry counter %s = %d, stats say %d", chk.counter, got, chk.want))
		}
	}
	// A failing scenario carries the packet-level tail of the run.
	problems = AttachTrace(problems, exact.Events, 16)
	return problems, nil
}

// subnetRun is one inference attempt's comparable outcome.
type subnetRun struct {
	Err        string
	Length     int
	Samples    []int
	Periphery  ipv6.Addr
	Violations []string
}

func runSubnet(seed int64, p FaultProfile) (subnetRun, error) {
	f, err := BuildISPFixture(seed)
	if err != nil {
		return subnetRun{}, err
	}
	inj := NewInjector(seed, p)
	iv := NewInvariants(inj.DupCount)
	f.Eng.SetFault(inj.Apply)
	iv.Attach(f.Eng)
	res, ierr := subnet.Infer(f.Drv, f.Block, subnet.Options{Seed: seed})
	out := subnetRun{Length: res.Length, Samples: res.Samples, Periphery: res.Periphery,
		Violations: iv.Violations()}
	if ierr != nil {
		out.Err = ierr.Error()
	}
	return out, nil
}

// RunSubnetScenario infers the fixture's delegated-prefix length under
// the profile. Lossless profiles must recover the true /64 boundary;
// lossy profiles may fail outright, but a returned length must stay
// within the walkable range, and a replay must be bit-identical.
func RunSubnetScenario(seed int64, p FaultProfile) ([]string, error) {
	r1, err := runSubnet(seed, p)
	if err != nil {
		return nil, err
	}
	r2, err := runSubnet(seed, p)
	if err != nil {
		return nil, err
	}
	var problems []string
	problems = append(problems, r1.Violations...)
	if p.Lossless() {
		switch {
		case r1.Err != "":
			problems = append(problems, fmt.Sprintf("inference failed on lossless profile: %s", r1.Err))
		case r1.Length != 64:
			problems = append(problems, fmt.Sprintf("inferred length %d, want 64", r1.Length))
		}
	} else if r1.Err == "" && (r1.Length < 57 || r1.Length > 64) {
		problems = append(problems, fmt.Sprintf("inferred length %d outside walkable range [57,64]", r1.Length))
	}
	if r1.Err != r2.Err || r1.Length != r2.Length || r1.Periphery != r2.Periphery ||
		len(r1.Samples) != len(r2.Samples) {
		problems = append(problems, fmt.Sprintf("replay diverged: %+v vs %+v", r1, r2))
	} else {
		for i := range r1.Samples {
			if r1.Samples[i] != r2.Samples[i] {
				problems = append(problems, fmt.Sprintf("replay sample %d diverged: %d vs %d", i, r1.Samples[i], r2.Samples[i]))
			}
		}
	}
	return problems, nil
}

// loopRun is one loop sweep's comparable outcome.
type loopRun struct {
	Vuln       map[ipv6.Addr]bool
	Targets    uint64
	Responses  uint64
	MaxFactor  float64
	Violations []string
}

func runLoop(seed int64, p FaultProfile, measure bool) (loopRun, error) {
	out := loopRun{Vuln: map[ipv6.Addr]bool{}}
	dep, err := BuildLoopDeployment(seed)
	if err != nil {
		return out, err
	}
	inj := NewInjector(seed, p)
	iv := NewInvariants(inj.DupCount)
	dep.Engine.SetFault(inj.Apply)
	iv.Attach(dep.Engine)
	drv := xmap.NewSimDriver(dep.Engine, dep.Edge)
	det := loopscan.NewDetector(drv)
	res, err := det.ScanWindows([]ipv6.Window{dep.ISPs[0].Window}, scanSeed(seed))
	if err != nil {
		return out, err
	}
	for _, h := range res.VulnerableHops() {
		out.Vuln[h.Addr] = true
	}
	out.Targets, out.Responses = res.Targets, res.Responses
	if measure {
		// Amplification: one max-hop-limit packet into a looping prefix
		// must ping-pong on the access link >200 times (Section VI-A).
		// Xiaomi-class devices cap the loop (Table XII), so skip them.
		for _, dev := range dep.Devices() {
			if !dev.Vulnerable() || dev.Vendor == "Xiaomi" || !out.Vuln[dev.WANAddr] {
				continue
			}
			dst := dev.WANAddr.WithIID(dev.WANAddr.IID() ^ 1)
			amp, err := loopscan.MeasureAmplification(drv, dst, dev.AccessLink)
			if err != nil {
				return out, err
			}
			if amp.Factor > out.MaxFactor {
				out.MaxFactor = amp.Factor
			}
			if out.MaxFactor > 200 {
				break
			}
		}
	}
	out.Violations = iv.Violations()
	return out, nil
}

// RunLoopScenario sweeps the generated China-Unicom-style deployment
// for routing loops under the profile. Detected vulnerable hops must be
// a subset of ground truth under every profile; lossless profiles must
// find at least one loop and measure an amplification factor above the
// paper's 200×; a replay must agree exactly.
func RunLoopScenario(seed int64, p FaultProfile) ([]string, error) {
	measure := p.Name == "none"
	r1, err := runLoop(seed, p, measure)
	if err != nil {
		return nil, err
	}
	r2, err := runLoop(seed, p, false)
	if err != nil {
		return nil, err
	}
	var problems []string
	problems = append(problems, r1.Violations...)

	dep, err := BuildLoopDeployment(seed)
	if err != nil {
		return nil, err
	}
	truth := map[ipv6.Addr]bool{}
	for _, dev := range dep.Devices() {
		if dev.Vulnerable() {
			truth[dev.WANAddr] = true
		}
	}
	for a := range r1.Vuln {
		if !truth[a] {
			problems = append(problems, fmt.Sprintf("false loop verdict at %s (not a vulnerable device)", a))
		}
	}
	if p.Lossless() && len(r1.Vuln) == 0 {
		problems = append(problems, fmt.Sprintf(
			"no loops found on lossless profile (%d vulnerable devices exist)", len(truth)))
	}
	if measure && r1.MaxFactor <= 200 {
		problems = append(problems, fmt.Sprintf(
			"amplification factor %.0f, want >200", r1.MaxFactor))
	}
	if len(r1.Vuln) != len(r2.Vuln) || r1.Targets != r2.Targets || r1.Responses != r2.Responses {
		problems = append(problems, fmt.Sprintf(
			"replay diverged: %d/%d/%d vs %d/%d/%d vulnerable/targets/responses",
			len(r1.Vuln), r1.Targets, r1.Responses, len(r2.Vuln), r2.Targets, r2.Responses))
	}
	for a := range r1.Vuln {
		if !r2.Vuln[a] {
			problems = append(problems, fmt.Sprintf("replay missed vulnerable hop %s", a))
		}
	}
	return problems, nil
}
