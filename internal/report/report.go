// Package report renders experiment aggregates as aligned text tables
// and simple ASCII bar charts — the terminal counterparts of the paper's
// tables and figures.
package report

import (
	"fmt"
	"strings"
)

// Table is a titled grid of rows.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends one row; cells beyond the header width are kept.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with column alignment.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i >= len(widths) {
				widths = append(widths, len(c))
			} else if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if pad := widths[i] - len(c); pad > 0 && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Bars renders a ranked label/value list as an ASCII bar chart scaled to
// the largest value.
type Bars struct {
	Title string
	Width int // bar width in characters (default 40)
}

// Render draws the bars.
func (bc Bars) Render(labels []string, values []int) string {
	width := bc.Width
	if width <= 0 {
		width = 40
	}
	maxV := 1
	maxLabel := 0
	for i, v := range values {
		if v > maxV {
			maxV = v
		}
		if len(labels[i]) > maxLabel {
			maxLabel = len(labels[i])
		}
	}
	var b strings.Builder
	if bc.Title != "" {
		b.WriteString(bc.Title)
		b.WriteByte('\n')
	}
	for i, v := range values {
		n := v * width / maxV
		fmt.Fprintf(&b, "%-*s |%s %d\n", maxLabel, labels[i], strings.Repeat("#", n), v)
	}
	return b.String()
}

// Count formats an integer with thousands separators (52_478_703 ->
// "52,478,703"), matching the paper's table style.
func Count(v int) string {
	s := fmt.Sprintf("%d", v)
	neg := strings.HasPrefix(s, "-")
	if neg {
		s = s[1:]
	}
	var parts []string
	for len(s) > 3 {
		parts = append([]string{s[len(s)-3:]}, parts...)
		s = s[:len(s)-3]
	}
	parts = append([]string{s}, parts...)
	out := strings.Join(parts, ",")
	if neg {
		out = "-" + out
	}
	return out
}

// Pct formats a percentage with one decimal.
func Pct(v float64) string { return fmt.Sprintf("%.1f", v) }
