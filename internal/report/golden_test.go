package report

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// checkGolden compares got against testdata/<name>.golden, rewriting the
// file when the -update flag is set.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("output diverged from %s (run with -update to accept):\n--- got ---\n%s\n--- want ---\n%s",
			path, got, want)
	}
}

// TestTableGolden pins the exact table rendering (alignment, rule width,
// trailing-space behaviour) of a Table VI-style vendor summary.
func TestTableGolden(t *testing.T) {
	tbl := &Table{
		Title:   "Periphery by vendor (Table VI style)",
		Headers: []string{"Vendor", "Devices", "Loop %"},
	}
	tbl.AddRow("Huawei", Count(12_345_678), Pct(12.3))
	tbl.AddRow("ZTE", Count(987), Pct(0.5))
	tbl.AddRow("Xiaomi", Count(-42), Pct(100))
	tbl.AddRow("(unknown)", Count(0), Pct(7.05), "extra-cell")
	checkGolden(t, "table", tbl.String())
}

// TestBarsGolden pins the bar chart scaling and label padding.
func TestBarsGolden(t *testing.T) {
	b := Bars{Title: "Loops per ISP"}
	out := b.Render(
		[]string{"China Unicom", "DT", "Sky", "(none)"},
		[]int{789, 123, 10, 0},
	)
	checkGolden(t, "bars", out)
}

// TestBarsNarrowGolden pins the explicit-width path and the all-zero
// divisor guard.
func TestBarsNarrowGolden(t *testing.T) {
	b := Bars{Title: "Narrow", Width: 10}
	out := b.Render([]string{"a", "bb"}, []int{0, 0})
	checkGolden(t, "bars_narrow", out)
}

// TestCountGolden pins the thousands separator across magnitudes and
// signs.
func TestCountGolden(t *testing.T) {
	var out string
	for _, v := range []int{0, 7, 999, 1000, 52_478_703, -1, -1234, -1_000_000} {
		out += Count(v) + "\n"
	}
	checkGolden(t, "count", out)
}
