package report

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := Table{
		Title:   "Demo",
		Headers: []string{"Name", "Value"},
	}
	tb.AddRow("a", "1")
	tb.AddRow("longer-name", "22")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "Demo" {
		t.Errorf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "Name") {
		t.Errorf("header = %q", lines[1])
	}
	// The "Value" column starts at the same offset in every row.
	idx := strings.Index(lines[1], "Value")
	if got := strings.Index(lines[3], "1"); got != idx {
		t.Errorf("row 1 misaligned: col %d vs %d\n%s", got, idx, out)
	}
	if got := strings.Index(lines[4], "22"); got != idx {
		t.Errorf("row 2 misaligned: col %d vs %d\n%s", got, idx, out)
	}
}

func TestTableExtraCells(t *testing.T) {
	tb := Table{Headers: []string{"A"}}
	tb.AddRow("x", "y", "z")
	out := tb.String()
	if !strings.Contains(out, "z") {
		t.Errorf("extra cells dropped:\n%s", out)
	}
}

func TestBarsScale(t *testing.T) {
	out := (Bars{Title: "T", Width: 10}).Render([]string{"a", "bb"}, []int{10, 5})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "T" {
		t.Errorf("title = %q", lines[0])
	}
	if strings.Count(lines[1], "#") != 10 {
		t.Errorf("max bar = %q", lines[1])
	}
	if strings.Count(lines[2], "#") != 5 {
		t.Errorf("half bar = %q", lines[2])
	}
}

func TestBarsZeroValues(t *testing.T) {
	out := (Bars{}).Render([]string{"a"}, []int{0})
	if !strings.Contains(out, "a") || !strings.Contains(out, "0") {
		t.Errorf("zero bar = %q", out)
	}
}

func TestCount(t *testing.T) {
	cases := map[int]string{
		0:        "0",
		7:        "7",
		999:      "999",
		1000:     "1,000",
		52478703: "52,478,703",
		-1234567: "-1,234,567",
	}
	for v, want := range cases {
		if got := Count(v); got != want {
			t.Errorf("Count(%d) = %q, want %q", v, got, want)
		}
	}
}

func TestPct(t *testing.T) {
	if Pct(99.25) != "99.2" && Pct(99.25) != "99.3" {
		t.Errorf("Pct = %q", Pct(99.25))
	}
	if Pct(0) != "0.0" {
		t.Errorf("Pct(0) = %q", Pct(0))
	}
}
