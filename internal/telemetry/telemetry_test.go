package telemetry

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func httpGet(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("status %s", resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	return string(body), err
}

func TestHistBucketBoundaries(t *testing.T) {
	cases := []struct {
		v    uint64
		slot int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{255, 8}, {256, 9}, {1 << 62, 63}, {^uint64(0), 64},
	}
	for _, c := range cases {
		if got := histBucket(c.v); got != c.slot {
			t.Errorf("histBucket(%d) = %d, want %d", c.v, got, c.slot)
		}
		lo, hi := histBucketBounds(histBucket(c.v))
		if c.v < lo || (c.v >= hi && c.v != ^uint64(0)) {
			t.Errorf("value %d outside its bucket bounds [%d,%d)", c.v, lo, hi)
		}
	}
}

func TestHistogramCountSumQuantiles(t *testing.T) {
	r := New(Options{TraceDepth: -1})
	sh := r.Shard(0)
	// 100 samples of 1, 10 of 100, 1 of 10000.
	for i := 0; i < 100; i++ {
		sh.Observe(HistReplyLatency, 1)
	}
	for i := 0; i < 10; i++ {
		sh.Observe(HistReplyLatency, 100)
	}
	sh.Observe(HistReplyLatency, 10000)
	hs := mergeHist(r.shards, HistReplyLatency)
	if hs == nil {
		t.Fatal("mergeHist returned nil for a populated histogram")
	}
	if hs.Count != 111 {
		t.Errorf("Count = %d, want 111", hs.Count)
	}
	if want := uint64(100*1 + 10*100 + 10000); hs.Sum != want {
		t.Errorf("Sum = %d, want %d", hs.Sum, want)
	}
	// P50 lands in the bucket holding 1 (bucket [1,2) → upper bound 1).
	if hs.P50 != 1 {
		t.Errorf("P50 = %d, want 1", hs.P50)
	}
	// P99 ranks at sample 109 (0-based), inside the 100s bucket [64,128).
	if hs.P99 != 127 {
		t.Errorf("P99 = %d, want 127", hs.P99)
	}
	// The max sample's bucket caps the top quantile.
	if q := hs.Quantile(1.0); q < 8192 || q > 16383 {
		t.Errorf("Quantile(1.0) = %d, want within [8192,16384)", q)
	}
	if empty := mergeHist(r.shards, HistDrainBatch); empty != nil {
		t.Errorf("mergeHist of untouched histogram = %+v, want nil", empty)
	}
}

func TestConcurrentCounters(t *testing.T) {
	r := New(Options{Shards: 4, TraceDepth: 64})
	const goroutines = 8
	const perG = 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sh := r.Shard(g)
			for i := 0; i < perG; i++ {
				sh.Inc(ScanSent)
				sh.Add(SimBytes, 3)
				sh.Observe(HistDrainBatch, uint64(i&0xff))
				sh.Trace(EvProbeSent, uint64(i), [16]byte{byte(g)}, uint64(i))
				if i%64 == 0 {
					_ = r.Snapshot() // concurrent readers must not race
				}
			}
		}(g)
	}
	wg.Wait()
	if got := r.CounterTotal(ScanSent); got != goroutines*perG {
		t.Errorf("ScanSent total = %d, want %d", got, goroutines*perG)
	}
	if got := r.CounterTotal(SimBytes); got != 3*goroutines*perG {
		t.Errorf("SimBytes total = %d, want %d", got, 3*goroutines*perG)
	}
	snap := r.Snapshot()
	if snap.Histograms[HistDrainBatch.String()].Count != goroutines*perG {
		t.Errorf("histogram count = %d, want %d",
			snap.Histograms[HistDrainBatch.String()].Count, goroutines*perG)
	}
}

func TestNilRegistryAndShardAreNoOps(t *testing.T) {
	var r *Registry
	sh := r.Shard(3)
	sh.Inc(ScanSent)
	sh.Add(ScanSent, 5)
	sh.SetGauge(GaugeWindow, 7)
	sh.Observe(HistDrainBatch, 1)
	sh.Trace(EvReply, 1, [16]byte{}, 2)
	if sh.Counter(ScanSent) != 0 || sh.Gauge(GaugeWindow) != 0 || sh.Ring().Len() != 0 {
		t.Error("nil shard mutated state")
	}
	if r.CounterTotal(ScanSent) != 0 || r.NumShards() != 0 || r.Events() != nil {
		t.Error("nil registry not empty")
	}
	snap := r.Snapshot()
	if snap.Shards != 0 || len(snap.PerShard) != 0 {
		t.Errorf("nil registry snapshot = %+v", snap)
	}
	var m *Monitor
	m.Tick()
	m.Final()
	m.SetTotal(10)
	if m.Lines() != 0 {
		t.Error("nil monitor recorded lines")
	}
}

func TestRingWraparoundBoundedMemory(t *testing.T) {
	r := newRing(100) // rounds up to 128
	if r.Cap() != 128 {
		t.Fatalf("Cap = %d, want 128 (next power of two)", r.Cap())
	}
	for i := 0; i < 1000; i++ {
		r.Record(EvProbeSent, uint64(i), [16]byte{}, uint64(i))
	}
	if r.Len() != 128 {
		t.Errorf("Len = %d, want capacity 128 after wrap", r.Len())
	}
	if r.Recorded() != 1000 {
		t.Errorf("Recorded = %d, want 1000", r.Recorded())
	}
	ev := r.Events()
	if len(ev) != 128 {
		t.Fatalf("Events returned %d, want 128", len(ev))
	}
	// Oldest surviving event is #872, newest #999, strictly ordered.
	if ev[0].Seq != 872 || ev[127].Seq != 999 {
		t.Errorf("event range [%d,%d], want [872,999]", ev[0].Seq, ev[127].Seq)
	}
	for i := 1; i < len(ev); i++ {
		if ev[i].Seq != ev[i-1].Seq+1 {
			t.Fatalf("events out of order at %d: %d after %d", i, ev[i].Seq, ev[i-1].Seq)
		}
	}
	if ev[0].Arg != 872 || ev[0].Clock != 872 {
		t.Errorf("oldest event payload = clock %d arg %d, want 872/872", ev[0].Clock, ev[0].Arg)
	}
}

func TestSnapshotJSONDeterministic(t *testing.T) {
	build := func() *Registry {
		r := New(Options{Shards: 2, TraceDepth: 16})
		for i := 0; i < 2; i++ {
			sh := r.Shard(i)
			sh.Add(ScanSent, uint64(10*(i+1)))
			sh.Add(ScanUnique, uint64(i))
			sh.SetGauge(GaugeWindow, 64)
			sh.Observe(HistReplyHopLimit, 55)
			sh.Trace(EvReply, 1, [16]byte{0x20, 0x01}, 55)
		}
		r.Register(func(add func(Counter, uint64)) { add(SimEvents, 42) })
		return r
	}
	var a, b bytes.Buffer
	if err := build().WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("identical registries serialize differently:\n%s\nvs\n%s", a.String(), b.String())
	}
	snap := build().Snapshot()
	if snap.Counters[ScanSent.String()] != 30 {
		t.Errorf("merged ScanSent = %d, want 30", snap.Counters[ScanSent.String()])
	}
	if snap.Counters[SimEvents.String()] != 42 {
		t.Errorf("collector total = %d, want 42", snap.Counters[SimEvents.String()])
	}
	if len(snap.PerShard) != 2 {
		t.Errorf("PerShard has %d entries, want 2", len(snap.PerShard))
	}
	if snap.TraceRecorded != 2 {
		t.Errorf("TraceRecorded = %d, want 2", snap.TraceRecorded)
	}
	if hr := snap.HitRate(); hr != float64(1)/30 {
		t.Errorf("HitRate = %v, want 1/30", hr)
	}
}

func TestDumpTraceJSON(t *testing.T) {
	r := New(Options{Shards: 1, TraceDepth: 8})
	addr := [16]byte{0x20, 0x01, 0x0d, 0xb8}
	r.Shard(0).Trace(EvProbeSent, 7, addr, 1)
	r.Shard(0).Trace(EvAIMD, 8, [16]byte{}, 128)
	var buf bytes.Buffer
	if err := r.DumpTrace(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"kind": "probe"`, `"addr": "2001:db8::"`, `"kind": "aimd-window"`, `"arg": 128`} {
		if !strings.Contains(out, want) {
			t.Errorf("trace dump missing %s:\n%s", want, out)
		}
	}
	// The window-change event has no address and must omit the field.
	if strings.Count(out, `"addr"`) != 1 {
		t.Errorf("zero addresses must be omitted:\n%s", out)
	}
}

func TestMonitorProbeClockCadence(t *testing.T) {
	r := New(Options{TraceDepth: -1})
	sh := r.Shard(0)
	var buf bytes.Buffer
	m := NewMonitor(r, &buf, 100)
	base := time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC)
	now := base
	m.SetNow(func() time.Time { return now })
	m.SetTotal(400)

	m.Tick() // starts the wall clock; nothing due yet
	if m.Lines() != 0 {
		t.Fatalf("line printed before any targets")
	}
	sh.Add(ScanTargets, 99)
	m.Tick()
	if m.Lines() != 0 {
		t.Fatalf("line printed below the cadence threshold")
	}
	sh.Add(ScanTargets, 1) // 100 total
	sh.Add(ScanSent, 100)
	sh.Add(ScanUnique, 25)
	sh.SetGauge(GaugeWindow, 64)
	now = base.Add(2 * time.Second)
	m.Tick()
	if m.Lines() != 1 {
		t.Fatalf("Lines = %d after cadence hit, want 1", m.Lines())
	}
	m.Tick() // same probe clock: no duplicate line
	if m.Lines() != 1 {
		t.Fatalf("duplicate line at unchanged probe clock")
	}
	sh.Add(ScanTargets, 300) // jump straight to 400
	sh.Add(ScanSent, 300)
	now = base.Add(4 * time.Second)
	m.Tick()
	m.Final()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3:\n%s", len(lines), buf.String())
	}
	first := lines[0]
	for _, want := range []string{"0:00:02", "25.0%", "send: 100", "50 p/s", "25 hits", "25.00% hit rate", "window: 64", "ETA 0:00:06"} {
		if !strings.Contains(first, want) {
			t.Errorf("first line missing %q: %s", want, first)
		}
	}
	if !strings.HasSuffix(lines[2], "; done") {
		t.Errorf("final line %q lacks done marker", lines[2])
	}
}

func TestMonitorTickAllocFree(t *testing.T) {
	r := New(Options{TraceDepth: -1})
	m := NewMonitor(r, &bytes.Buffer{}, 1000000)
	r.Shard(0).Add(ScanTargets, 1)
	m.Tick()
	allocs := testing.AllocsPerRun(1000, func() { m.Tick() })
	if allocs != 0 {
		t.Errorf("Tick allocates %.1f/op on the not-due path, want 0", allocs)
	}
}

func TestShardModulo(t *testing.T) {
	r := New(Options{Shards: 2, TraceDepth: -1})
	if r.Shard(0) != r.Shard(2) || r.Shard(1) != r.Shard(3) {
		t.Error("Shard does not wrap modulo the shard count")
	}
	if r.Shard(-1) != r.Shard(0) {
		t.Error("negative index does not clamp to shard 0")
	}
}

func TestCounterNamesComplete(t *testing.T) {
	for c := Counter(0); c < NumCounters; c++ {
		if c.String() == "" || strings.Contains(c.String(), "?") {
			t.Errorf("counter %d has no name", c)
		}
	}
	for g := Gauge(0); g < NumGauges; g++ {
		if g.String() == "" || strings.Contains(g.String(), "?") {
			t.Errorf("gauge %d has no name", g)
		}
	}
	for h := Hist(0); h < NumHists; h++ {
		if h.String() == "" || strings.Contains(h.String(), "?") {
			t.Errorf("hist %d has no name", h)
		}
	}
	for _, k := range []EventKind{EvProbeSent, EvReply, EvICMPError, EvRetry, EvAIMD, EvCheckpoint} {
		if strings.Contains(k.String(), "?") {
			t.Errorf("event kind %d has no name", k)
		}
	}
	// Snapshot documents every counter, including zeros: the JSON doubles
	// as the schema.
	snap := New(Options{TraceDepth: -1}).Snapshot()
	if len(snap.Counters) != int(NumCounters) {
		t.Errorf("snapshot has %d counters, want %d", len(snap.Counters), NumCounters)
	}
}

func TestFmtDuration(t *testing.T) {
	for d, want := range map[time.Duration]string{
		0:                            "0:00:00",
		83 * time.Second:             "0:01:23",
		2*time.Hour + 3*time.Minute:  "2:03:00",
		26*time.Hour + 5*time.Second: "26:00:05",
		-5 * time.Second:             "0:00:00",
		1500 * time.Millisecond:      "0:00:01",
	} {
		if got := fmtDuration(d); got != want {
			t.Errorf("fmtDuration(%v) = %q, want %q", d, got, want)
		}
	}
}

func TestHTTPHandler(t *testing.T) {
	r := New(Options{Shards: 1, TraceDepth: 8})
	r.Shard(0).Add(ScanSent, 3)
	r.Shard(0).Trace(EvReply, 1, [16]byte{}, 9)
	srv, addr, err := r.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	get := func(path string) string {
		t.Helper()
		resp, err := httpGet(fmt.Sprintf("http://%s%s", addr, path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return resp
	}
	if body := get("/telemetry"); !strings.Contains(body, `"scan.sent": 3`) {
		t.Errorf("/telemetry missing counter:\n%s", body)
	}
	if body := get("/trace"); !strings.Contains(body, `"kind": "reply"`) {
		t.Errorf("/trace missing event:\n%s", body)
	}
	if body := get("/debug/vars"); !strings.Contains(body, "telemetry") {
		t.Errorf("/debug/vars missing published var:\n%s", body)
	}
}
