package telemetry

import (
	"fmt"
	"sync"
)

// Watchdog turns a silent hang into a structured diagnosis. Each
// scanner shard reports coarse progress — its stage at phase
// transitions, and a beat per drain window carrying the sent cursor,
// transmission-ring depth and drain age. A checker (a wall-clock
// goroutine in cmd/xmap, the test harness in simtest) calls Check with
// any monotone clock; a shard whose sent cursor has not moved for
// threshold clock units, and which has not reached the "done" stage, is
// diagnosed with everything needed to name the hang: which shard, which
// stage, and the last span its trace stream recorded.
//
// All methods are safe on a nil receiver, so the scanner wires beats
// unconditionally and pays one branch when no watchdog is attached.
type Watchdog struct {
	mu        sync.Mutex
	tr        *Tracer
	threshold uint64
	shards    []wdShard
}

// wdShard is one shard's last-reported progress plus the checker's
// progress bookkeeping.
type wdShard struct {
	stage     string
	sent      uint64
	ringDepth int
	drainAge  uint64
	beats     uint64
	lastSent  uint64 // sent cursor at the last progress observation
	lastMove  uint64 // checker clock of the last observed progress
	observed  bool
}

// StageDone is the stage a finished shard reports; done shards are
// exempt from stall detection.
const StageDone = "done"

// NewWatchdog builds a watchdog for the given shard count. threshold is
// how many checker clock units a shard may sit without progress before
// it is diagnosed; tr (optional) supplies each diagnosis's last-span
// field from the shard's trace stream.
func NewWatchdog(shards int, threshold uint64, tr *Tracer) *Watchdog {
	if shards < 1 {
		shards = 1
	}
	if threshold == 0 {
		threshold = 8
	}
	return &Watchdog{threshold: threshold, tr: tr, shards: make([]wdShard, shards)}
}

func (w *Watchdog) shard(i int) *wdShard {
	if i < 0 || i >= len(w.shards) {
		i = 0
	}
	return &w.shards[i]
}

// Stage records a shard's phase transition ("send", "drain",
// "cooldown", StageDone). Called at transitions only, never per probe.
func (w *Watchdog) Stage(shard int, stage string) {
	if w == nil {
		return
	}
	w.mu.Lock()
	w.shard(shard).stage = stage
	w.mu.Unlock()
}

// Beat reports one drain window's progress sample: the sent cursor, the
// transmission ring's queued depth (0 without a ring), and the drain
// age (probes since the last receive drain).
func (w *Watchdog) Beat(shard int, sent uint64, ringDepth int, drainAge uint64) {
	if w == nil {
		return
	}
	w.mu.Lock()
	s := w.shard(shard)
	s.sent, s.ringDepth, s.drainAge = sent, ringDepth, drainAge
	s.beats++
	w.mu.Unlock()
}

// StallDiagnosis names one stalled shard and the state it wedged in.
type StallDiagnosis struct {
	Shard      int
	Stage      string
	Sent       uint64
	RingDepth  int
	DrainAge   uint64
	Beats      uint64
	StalledFor uint64 // checker clock units without progress
	LastSpan   string // most recent span kind on the shard's trace stream
}

// String renders the diagnosis as the one-line report cmd/xmap prints.
func (d StallDiagnosis) String() string {
	return fmt.Sprintf(
		"watchdog: shard %d stalled in stage %q for %d ticks (sent=%d, ring=%d, drain-age=%d, beats=%d, last-span=%s)",
		d.Shard, d.Stage, d.StalledFor, d.Sent, d.RingDepth, d.DrainAge, d.Beats, d.LastSpan)
}

// Check samples every shard against the given monotone clock and
// returns a diagnosis per stalled shard (nil when all are healthy). A
// shard is stalled when its sent cursor has not advanced for threshold
// clock units and it has not reported StageDone. The first Check only
// baselines; detection needs at least two calls.
func (w *Watchdog) Check(clock uint64) []StallDiagnosis {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	var out []StallDiagnosis
	for i := range w.shards {
		s := &w.shards[i]
		if !s.observed || s.sent != s.lastSent || s.stage == StageDone {
			s.observed = true
			s.lastSent = s.sent
			s.lastMove = clock
			continue
		}
		if clock-s.lastMove < w.threshold {
			continue
		}
		last := "none"
		if k := w.tr.LastKind(i); k != 0 {
			last = k.String()
		}
		out = append(out, StallDiagnosis{
			Shard:      i,
			Stage:      s.stage,
			Sent:       s.sent,
			RingDepth:  s.ringDepth,
			DrainAge:   s.drainAge,
			Beats:      s.beats,
			StalledFor: clock - s.lastMove,
			LastSpan:   last,
		})
	}
	return out
}
