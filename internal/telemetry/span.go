package telemetry

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"repro/internal/ipv6"
)

// SpanKind labels one probe-lifecycle stage. Every stage already counted
// by a Counter has a span twin, so a sampled target's trace reads as the
// causal chain behind the aggregate numbers: sent → ring-enqueue → hop*
// → reply/icmp-error → dedup, with retry, rate-gate, AIMD and the
// defense verdicts interleaved where they fired.
type SpanKind uint8

const (
	SpanSent SpanKind = iota + 1
	SpanRingEnqueue
	SpanRingStall
	SpanHop
	SpanRateGate
	SpanReply
	SpanICMPError
	SpanDedup
	SpanRetry
	SpanAIMD
	SpanQuarantine
	SpanAliasCooldown
	SpanShed
)

// spanKindNames is indexed by SpanKind; the zero kind is unused.
var spanKindNames = [...]string{
	SpanSent:          "sent",
	SpanRingEnqueue:   "ring-enqueue",
	SpanRingStall:     "ring-stall",
	SpanHop:           "hop",
	SpanRateGate:      "rate-gate",
	SpanReply:         "reply",
	SpanICMPError:     "icmp-error",
	SpanDedup:         "dedup",
	SpanRetry:         "retry",
	SpanAIMD:          "aimd-window",
	SpanQuarantine:    "quarantine",
	SpanAliasCooldown: "alias-cooldown",
	SpanShed:          "shed",
}

func (k SpanKind) String() string {
	if int(k) < len(spanKindNames) && spanKindNames[k] != "" {
		return spanKindNames[k]
	}
	return "unknown"
}

// Span is one fixed-size trace slot. Node and Iface are string headers
// over the simulator's interned interface names (set only for SpanHop),
// so recording a span never allocates.
type Span struct {
	Seq   uint64
	Clock uint64
	Addr  [16]byte
	Arg   uint64
	Node  string
	Iface string
	Kind  SpanKind
	Hop   uint8
	Drop  bool
}

// Sampler is the deterministic address-hash sampling decision: a keyed
// PRF over the 128-bit target address, admitting 1/2^shift of the
// space. Every layer (scanner, ring driver, simulator) holds the same
// seeded sampler and evaluates it independently, so one target's spans
// stitch across layers with no trace context passed between them — and
// the same seed reproduces the same traced set, making traces diffable
// artifacts rather than debugging noise.
type Sampler struct {
	key0, key1 uint64
	mask       uint64
}

// mix64 is the splitmix64 finalizer: a cheap full-avalanche permutation.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// NewSampler derives a sampler from the scan seed at a 1/2^shift rate
// (shift clamped to [0,63]; 0 samples every target).
func NewSampler(seed []byte, shift int) Sampler {
	if shift < 0 {
		shift = 0
	}
	if shift > 63 {
		shift = 63
	}
	h := uint64(0xcbf29ce484222325) // FNV-1a over the seed keys the PRF
	for _, b := range seed {
		h = (h ^ uint64(b)) * 0x100000001b3
	}
	return Sampler{
		key0: mix64(h),
		key1: mix64(h ^ 0x9e3779b97f4a7c15),
		mask: 1<<uint(shift) - 1,
	}
}

// Sample decides membership for an address given as two big-endian
// 64-bit limbs. Allocation-free and branch-predictable; safe to call on
// every packet of a hot path.
func (s Sampler) Sample(hi, lo uint64) bool {
	x := (hi ^ s.key0) * 0x9e3779b97f4a7c15
	x ^= lo ^ s.key1
	return mix64(x)&s.mask == 0
}

// SampleAddr is Sample over an address in wire representation.
func (s Sampler) SampleAddr(a [16]byte) bool {
	return s.Sample(binary.BigEndian.Uint64(a[0:8]), binary.BigEndian.Uint64(a[8:16]))
}

// SpanRing is a bounded span recorder, the span twin of the
// flight-recorder Ring: fixed power-of-two storage, oldest entries
// overwritten, recording allocation-free behind one short mutex.
type SpanRing struct {
	mu  sync.Mutex
	buf []Span
	seq uint64
}

func newSpanRing(depth int) *SpanRing {
	if depth < 1 {
		depth = 1
	}
	cap := 1
	for cap < depth {
		cap <<= 1
	}
	return &SpanRing{buf: make([]Span, cap)}
}

// record appends one span; sp.Seq is assigned here.
func (r *SpanRing) record(sp Span) {
	r.mu.Lock()
	sp.Seq = r.seq
	r.buf[r.seq&uint64(len(r.buf)-1)] = sp
	r.seq++
	r.mu.Unlock()
}

// Recorded returns the lifetime span count (recorded, not retained).
func (r *SpanRing) Recorded() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}

// Len returns the spans currently retained.
func (r *SpanRing) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lenLocked()
}

func (r *SpanRing) lenLocked() int {
	if r.seq < uint64(len(r.buf)) {
		return int(r.seq)
	}
	return len(r.buf)
}

// Cap returns the ring capacity.
func (r *SpanRing) Cap() int { return len(r.buf) }

// AppendSpans appends the retained spans, oldest first.
func (r *SpanRing) AppendSpans(dst []Span) []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.lenLocked()
	start := r.seq - uint64(n)
	for i := 0; i < n; i++ {
		dst = append(dst, r.buf[(start+uint64(i))&uint64(len(r.buf)-1)])
	}
	return dst
}

// lastKind returns the kind of the most recent span (0 if empty).
func (r *SpanRing) lastKind() SpanKind {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.seq == 0 {
		return 0
	}
	return r.buf[(r.seq-1)&uint64(len(r.buf)-1)].Kind
}

// copyTail copies up to len(dst) most recent spans into dst, oldest
// first, returning the count — the exemplar capture primitive.
func (r *SpanRing) copyTail(dst []Span) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.lenLocked()
	if n > len(dst) {
		n = len(dst)
	}
	start := r.seq - uint64(n)
	for i := 0; i < n; i++ {
		dst[i] = r.buf[(start+uint64(i))&uint64(len(r.buf)-1)]
	}
	return n
}

// ExemplarSpans is the trace depth captured per anomaly exemplar.
const ExemplarSpans = 16

// AnomalyKind labels what fired an exemplar capture.
type AnomalyKind uint8

const (
	AnomalyQuarantine AnomalyKind = iota + 1
	AnomalyAlias
	AnomalyRetryExhausted
	AnomalyShed
)

var anomalyKindNames = [...]string{
	AnomalyQuarantine:     "quarantine",
	AnomalyAlias:          "alias-detected",
	AnomalyRetryExhausted: "retry-exhausted",
	AnomalyShed:           "shed",
}

func (k AnomalyKind) String() string {
	if int(k) < len(anomalyKindNames) && anomalyKindNames[k] != "" {
		return anomalyKindNames[k]
	}
	return "unknown"
}

// Exemplar is one automatically captured anomaly trace: the last
// ExemplarSpans spans of the stream the anomaly fired on, frozen at
// capture time. Slots are preallocated; capture copies fixed arrays.
type Exemplar struct {
	Kind   AnomalyKind
	Clock  uint64
	Addr   [16]byte
	Stream int
	N      int
	Spans  [ExemplarSpans]Span
}

// DefaultSpanDepth is the per-stream ring depth when TracerOptions
// leaves Depth zero.
const DefaultSpanDepth = 4096

// DefaultExemplars is the exemplar slot count when TracerOptions leaves
// Exemplars zero.
const DefaultExemplars = 8

// TracerOptions configures a Tracer.
type TracerOptions struct {
	// Seed keys the sampling PRF; pass the scan seed so traces are
	// per-seed deterministic.
	Seed []byte
	// SampleShift selects the 1/2^k sampling rate (0 = every target).
	SampleShift int
	// ScanStreams is one span stream per scanner shard; SimStreams one
	// per simulator engine shard. Separate single-writer-ordered streams
	// keep the exported trace byte-deterministic under concurrency.
	ScanStreams, SimStreams int
	// Depth is the per-stream ring depth (default DefaultSpanDepth).
	Depth int
	// Exemplars is the anomaly exemplar slot count (default
	// DefaultExemplars).
	Exemplars int
}

// Tracer records sampled probe-lifecycle spans across fixed per-shard
// streams plus first-N anomaly exemplars. All methods are safe on a nil
// receiver (the detached fast path), and recording never allocates.
type Tracer struct {
	sampler Sampler
	nScan   int
	streams []*SpanRing

	exMu    sync.Mutex
	ex      []Exemplar
	exN     int
	exTotal uint64 // anomalies fired, including past-capacity ones
}

// NewTracer builds a tracer; see TracerOptions.
func NewTracer(o TracerOptions) *Tracer {
	if o.ScanStreams < 1 {
		o.ScanStreams = 1
	}
	if o.SimStreams < 0 {
		o.SimStreams = 0
	}
	if o.Depth <= 0 {
		o.Depth = DefaultSpanDepth
	}
	if o.Exemplars <= 0 {
		o.Exemplars = DefaultExemplars
	}
	t := &Tracer{
		sampler: NewSampler(seedOrTrace(o.Seed), o.SampleShift),
		nScan:   o.ScanStreams,
		ex:      make([]Exemplar, o.Exemplars),
	}
	for i := 0; i < o.ScanStreams+o.SimStreams; i++ {
		t.streams = append(t.streams, newSpanRing(o.Depth))
	}
	return t
}

func seedOrTrace(seed []byte) []byte {
	if len(seed) == 0 {
		return []byte("telemetry-trace")
	}
	return seed
}

// Sample reports whether the address (big-endian limbs) is in the
// traced set. False on a nil tracer.
func (t *Tracer) Sample(hi, lo uint64) bool {
	if t == nil {
		return false
	}
	return t.sampler.Sample(hi, lo)
}

// SampleAddr is Sample over wire representation.
func (t *Tracer) SampleAddr(a [16]byte) bool {
	if t == nil {
		return false
	}
	return t.sampler.SampleAddr(a)
}

// SimStream maps an engine shard index to its tracer stream (engine
// streams follow the scanner streams).
func (t *Tracer) SimStream(i int) int {
	if t == nil {
		return 0
	}
	return t.nScan + i
}

// stream clamps an index into the stream table.
func (t *Tracer) stream(i int) *SpanRing {
	if i < 0 || i >= len(t.streams) {
		i = len(t.streams) - 1
	}
	return t.streams[i]
}

// Span records one non-hop lifecycle span. The caller has already made
// the sampling decision (or the kind is an always-recorded anomaly
// span).
func (t *Tracer) Span(stream int, kind SpanKind, clock uint64, addr [16]byte, arg uint64) {
	if t == nil {
		return
	}
	t.stream(stream).record(Span{Clock: clock, Addr: addr, Arg: arg, Kind: kind})
}

// Hop records one simulated link crossing of a traced flow. Clock is
// the stream's own sequence (the simulator has no probe clock); node
// and iface are interned simulator names, so this is allocation-free.
func (t *Tracer) Hop(stream int, hi, lo uint64, node, iface string, hop uint8, drop bool) {
	if t == nil {
		return
	}
	var a [16]byte
	binary.BigEndian.PutUint64(a[0:8], hi)
	binary.BigEndian.PutUint64(a[8:16], lo)
	r := t.stream(stream)
	r.mu.Lock()
	r.buf[r.seq&uint64(len(r.buf)-1)] = Span{
		Seq: r.seq, Clock: r.seq, Addr: a,
		Node: node, Iface: iface, Kind: SpanHop, Hop: hop, Drop: drop,
	}
	r.seq++
	r.mu.Unlock()
}

// Anomaly captures an exemplar: the firing stream's most recent spans,
// frozen into the next free slot (first-N; later anomalies only count).
func (t *Tracer) Anomaly(kind AnomalyKind, stream int, clock uint64, addr [16]byte) {
	if t == nil {
		return
	}
	t.exMu.Lock()
	t.exTotal++
	if t.exN >= len(t.ex) {
		t.exMu.Unlock()
		return
	}
	e := &t.ex[t.exN]
	t.exN++
	e.Kind, e.Clock, e.Addr, e.Stream = kind, clock, addr, stream
	t.exMu.Unlock()
	// Copy outside exMu: the span ring has its own lock, and a
	// concurrent Anomaly call has already claimed a different slot.
	e.N = t.stream(stream).copyTail(e.Spans[:])
}

// SpansRecorded sums the lifetime span counts across all streams.
func (t *Tracer) SpansRecorded() uint64 {
	if t == nil {
		return 0
	}
	var n uint64
	for _, r := range t.streams {
		n += r.Recorded()
	}
	return n
}

// ExemplarCount returns the captured exemplar count.
func (t *Tracer) ExemplarCount() int {
	if t == nil {
		return 0
	}
	t.exMu.Lock()
	defer t.exMu.Unlock()
	return t.exN
}

// AnomalyCount returns every anomaly fired, including those past the
// exemplar capacity.
func (t *Tracer) AnomalyCount() uint64 {
	if t == nil {
		return 0
	}
	t.exMu.Lock()
	defer t.exMu.Unlock()
	return t.exTotal
}

// Exemplars returns a snapshot copy of the captured exemplars.
func (t *Tracer) Exemplars() []Exemplar {
	if t == nil {
		return nil
	}
	t.exMu.Lock()
	defer t.exMu.Unlock()
	out := make([]Exemplar, t.exN)
	copy(out, t.ex[:t.exN])
	return out
}

// LastKind returns the most recent span kind on a stream ("none" via
// SpanKind 0 when the stream is empty or the tracer nil).
func (t *Tracer) LastKind(stream int) SpanKind {
	if t == nil || len(t.streams) == 0 {
		return 0
	}
	return t.stream(stream).lastKind()
}

// Streams returns the stream count.
func (t *Tracer) Streams() int {
	if t == nil {
		return 0
	}
	return len(t.streams)
}

// spanJSON is the NDJSON line layout; field order is fixed by struct
// order, so identical spans serialize byte-identically.
type spanJSON struct {
	Stream int    `json:"stream"`
	Seq    uint64 `json:"seq"`
	Clock  uint64 `json:"clock"`
	Kind   string `json:"kind"`
	Addr   string `json:"addr,omitempty"`
	Node   string `json:"node,omitempty"`
	Iface  string `json:"iface,omitempty"`
	Hop    uint16 `json:"hop,omitempty"`
	Drop   bool   `json:"drop,omitempty"`
	Arg    uint64 `json:"arg,omitempty"`
}

func spanToJSON(stream int, sp Span) spanJSON {
	j := spanJSON{
		Stream: stream,
		Seq:    sp.Seq,
		Clock:  sp.Clock,
		Kind:   sp.Kind.String(),
		Node:   sp.Node,
		Iface:  sp.Iface,
		Drop:   sp.Drop,
		Arg:    sp.Arg,
	}
	if sp.Addr != ([16]byte{}) {
		j.Addr = ipv6.AddrFromBytes(sp.Addr[:]).String()
	}
	if sp.Kind == SpanHop {
		j.Hop = uint16(sp.Hop)
	}
	return j
}

// WriteNDJSON writes every retained span, one JSON object per line,
// stream by stream in index order and oldest-first within a stream.
// Each stream has a single ordered writer, so the output is
// byte-identical across runs of the same seeded scan.
func (t *Tracer) WriteNDJSON(w io.Writer) error {
	if t == nil {
		return nil
	}
	var scratch []Span
	enc := json.NewEncoder(w)
	for i, r := range t.streams {
		scratch = r.AppendSpans(scratch[:0])
		for _, sp := range scratch {
			if err := enc.Encode(spanToJSON(i, sp)); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteChromeTrace writes the retained spans as a Chrome-trace /
// Perfetto JSON document: one instant event per span, one track (tid)
// per stream, ts = span sequence so per-track order matches recording
// order. Load the file at ui.perfetto.dev or chrome://tracing.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"traceEvents":[]}`+"\n")
		return err
	}
	if _, err := io.WriteString(w, `{"traceEvents":[`); err != nil {
		return err
	}
	var scratch []Span
	first := true
	for i, r := range t.streams {
		scratch = r.AppendSpans(scratch[:0])
		for _, sp := range scratch {
			sep := ",\n"
			if first {
				sep, first = "\n", false
			}
			if _, err := io.WriteString(w, sep); err != nil {
				return err
			}
			if err := writeChromeEvent(w, i, sp); err != nil {
				return err
			}
		}
	}
	_, err := io.WriteString(w, "\n]}\n")
	return err
}

func writeChromeEvent(w io.Writer, stream int, sp Span) error {
	if _, err := fmt.Fprintf(w, `{"name":%q,"ph":"i","s":"t","pid":1,"tid":%d,"ts":%d,"args":{"clock":%d`,
		sp.Kind.String(), stream, sp.Seq, sp.Clock); err != nil {
		return err
	}
	if sp.Addr != ([16]byte{}) {
		if _, err := fmt.Fprintf(w, `,"addr":%q`, ipv6.AddrFromBytes(sp.Addr[:]).String()); err != nil {
			return err
		}
	}
	if sp.Kind == SpanHop {
		if _, err := fmt.Fprintf(w, `,"node":%q,"iface":%q,"hop":%d,"drop":%t`,
			sp.Node, sp.Iface, sp.Hop, sp.Drop); err != nil {
			return err
		}
	} else if sp.Arg != 0 {
		if _, err := fmt.Fprintf(w, `,"arg":%d`, sp.Arg); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "}}")
	return err
}
