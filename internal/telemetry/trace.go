package telemetry

import (
	"encoding/json"
	"io"
	"sync"

	"repro/internal/ipv6"
)

// EventKind classifies one flight-recorder event.
type EventKind uint8

// Event kinds — the packet-level moments the recorder keeps.
const (
	// EvProbeSent: a fresh target was probed. Addr is the target, Arg
	// the target ordinal.
	EvProbeSent EventKind = iota + 1
	// EvReply: a validated response arrived. Addr is the responder, Arg
	// the arriving hop limit.
	EvReply
	// EvICMPError: a validated ICMPv6 error (unreachable / time
	// exceeded) arrived — the periphery signal itself. Addr is the
	// responder, Arg the arriving hop limit.
	EvICMPError
	// EvRetry: an unanswered target was re-probed. Addr is the target,
	// Arg the attempt number.
	EvRetry
	// EvAIMD: the rate controller changed the send window. Arg is the
	// new window.
	EvAIMD
	// EvCheckpoint: a resumable checkpoint was cut. Arg is the shard's
	// consumed-target count.
	EvCheckpoint
)

var eventKindNames = [...]string{
	EvProbeSent:  "probe",
	EvReply:      "reply",
	EvICMPError:  "icmp-error",
	EvRetry:      "retry",
	EvAIMD:       "aimd-window",
	EvCheckpoint: "checkpoint",
}

// String names the kind.
func (k EventKind) String() string {
	if int(k) < len(eventKindNames) && eventKindNames[k] != "" {
		return eventKindNames[k]
	}
	return "event(?)"
}

// Event is one recorded moment. The struct is fixed-size and
// pointer-free so the ring is a single preallocated block the garbage
// collector never walks.
type Event struct {
	// Seq is the shard-local record ordinal (monotone; wrapped-over
	// events are gone but Seq exposes how many were recorded).
	Seq uint64
	// Clock is the probe clock at record time (probes sent so far).
	Clock uint64
	// Kind classifies the event.
	Kind EventKind
	// Addr is the raw address the event concerns (target or responder);
	// all-zero when not applicable.
	Addr [16]byte
	// Arg is the kind-specific value (hop limit, attempt, window, ...).
	Arg uint64
}

// eventJSON is Event's exposition form.
type eventJSON struct {
	Seq   uint64 `json:"seq"`
	Clock uint64 `json:"clock"`
	Kind  string `json:"kind"`
	Addr  string `json:"addr,omitempty"`
	Arg   uint64 `json:"arg"`
}

func (e Event) toJSON() eventJSON {
	j := eventJSON{Seq: e.Seq, Clock: e.Clock, Kind: e.Kind.String(), Arg: e.Arg}
	if e.Addr != ([16]byte{}) {
		j.Addr = ipv6.AddrFromBytes(e.Addr[:]).String()
	}
	return j
}

// MarshalJSON implements json.Marshaler.
func (e Event) MarshalJSON() ([]byte, error) { return json.Marshal(e.toJSON()) }

// Ring is the flight recorder: a bounded ring of recent events. It is
// single-block, fixed-capacity memory — recording a 2^40-probe scan
// holds exactly the same bytes as recording twenty. Writers take one
// uncontended mutex (each scan shard owns its ring, so the lock only
// synchronizes with snapshot readers); Record never allocates.
type Ring struct {
	mu  sync.Mutex
	buf []Event // power-of-two capacity
	seq uint64  // next record ordinal; buf slot is seq&(len-1)
}

// newRing allocates a ring with capacity rounded up to a power of two.
func newRing(depth int) *Ring {
	cap := 1
	for cap < depth {
		cap <<= 1
	}
	return &Ring{buf: make([]Event, cap)}
}

// Cap returns the ring capacity (0 for a nil ring).
func (r *Ring) Cap() int {
	if r == nil {
		return 0
	}
	return len(r.buf)
}

// Record appends one event, overwriting the oldest once full.
func (r *Ring) Record(kind EventKind, clock uint64, addr [16]byte, arg uint64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	e := &r.buf[r.seq&uint64(len(r.buf)-1)]
	e.Seq, e.Clock, e.Kind, e.Addr, e.Arg = r.seq, clock, kind, addr, arg
	r.seq++
	r.mu.Unlock()
}

// Len returns how many events the ring currently holds.
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.seq < uint64(len(r.buf)) {
		return int(r.seq)
	}
	return len(r.buf)
}

// Recorded returns the total events ever recorded (including ones the
// ring has since overwritten).
func (r *Ring) Recorded() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}

// AppendEvents appends the ring contents, oldest first, to dst.
func (r *Ring) AppendEvents(dst []Event) []Event {
	if r == nil {
		return dst
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.seq
	start := uint64(0)
	if n > uint64(len(r.buf)) {
		start = n - uint64(len(r.buf))
	}
	for s := start; s < n; s++ {
		dst = append(dst, r.buf[s&uint64(len(r.buf)-1)])
	}
	return dst
}

// Events returns the ring contents, oldest first.
func (r *Ring) Events() []Event { return r.AppendEvents(nil) }

// traceDoc is the JSON shape of a flight-recorder dump. Spans and
// exemplars appear only when a span tracer is attached, so the bare
// flight-recorder dump keeps its original shape.
type traceDoc struct {
	Shards    []shardTrace   `json:"shards"`
	Spans     []streamTrace  `json:"spans,omitempty"`
	Exemplars []exemplarJSON `json:"exemplars,omitempty"`
}

type shardTrace struct {
	Shard    int         `json:"shard"`
	Recorded uint64      `json:"recorded"`
	Events   []eventJSON `json:"events"`
}

type streamTrace struct {
	Stream   int        `json:"stream"`
	Recorded uint64     `json:"recorded"`
	Spans    []spanJSON `json:"spans"`
}

type exemplarJSON struct {
	Kind   string     `json:"kind"`
	Clock  uint64     `json:"clock"`
	Addr   string     `json:"addr,omitempty"`
	Stream int        `json:"stream"`
	Spans  []spanJSON `json:"spans"`
}

// DumpTrace writes every shard's flight-recorder contents — plus, when
// a span tracer is attached, every stream's sampled spans and the
// captured anomaly exemplars — as one indented JSON document.
func (r *Registry) DumpTrace(w io.Writer) error {
	doc := traceDoc{Shards: []shardTrace{}}
	if r != nil {
		for i, sh := range r.shards {
			st := shardTrace{Shard: i, Recorded: sh.ring.Recorded(), Events: []eventJSON{}}
			for _, e := range sh.ring.Events() {
				st.Events = append(st.Events, e.toJSON())
			}
			doc.Shards = append(doc.Shards, st)
		}
		if t := r.Tracer(); t != nil {
			var scratch []Span
			for i := 0; i < t.Streams(); i++ {
				ring := t.stream(i)
				st := streamTrace{Stream: i, Recorded: ring.Recorded(), Spans: []spanJSON{}}
				scratch = ring.AppendSpans(scratch[:0])
				for _, sp := range scratch {
					st.Spans = append(st.Spans, spanToJSON(i, sp))
				}
				doc.Spans = append(doc.Spans, st)
			}
			for _, ex := range t.Exemplars() {
				ej := exemplarJSON{
					Kind: ex.Kind.String(), Clock: ex.Clock, Stream: ex.Stream,
					Spans: []spanJSON{},
				}
				if ex.Addr != ([16]byte{}) {
					ej.Addr = ipv6.AddrFromBytes(ex.Addr[:]).String()
				}
				for _, sp := range ex.Spans[:ex.N] {
					ej.Spans = append(ej.Spans, spanToJSON(ex.Stream, sp))
				}
				doc.Exemplars = append(doc.Exemplars, ej)
			}
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
