package telemetry

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
)

// addrN builds a deterministic test address from an index.
func addrN(i uint64) [16]byte {
	var a [16]byte
	binary.BigEndian.PutUint64(a[0:8], 0x20010db8<<32|i>>32)
	binary.BigEndian.PutUint64(a[8:16], i)
	return a
}

// TestSpanRingWraparoundBoundedMemory mirrors
// TestRingWraparoundBoundedMemory for the span ring: fixed power-of-two
// storage, oldest spans overwritten, strict ordering preserved.
func TestSpanRingWraparoundBoundedMemory(t *testing.T) {
	r := newSpanRing(100) // rounds up to 128
	if r.Cap() != 128 {
		t.Fatalf("Cap = %d, want 128 (next power of two)", r.Cap())
	}
	for i := 0; i < 1000; i++ {
		r.record(Span{Kind: SpanSent, Clock: uint64(i), Arg: uint64(i)})
	}
	if r.Len() != 128 {
		t.Errorf("Len = %d, want capacity 128 after wrap", r.Len())
	}
	if r.Recorded() != 1000 {
		t.Errorf("Recorded = %d, want 1000", r.Recorded())
	}
	spans := r.AppendSpans(nil)
	if len(spans) != 128 {
		t.Fatalf("AppendSpans returned %d, want 128", len(spans))
	}
	// Oldest surviving span is #872, newest #999, strictly ordered.
	if spans[0].Seq != 872 || spans[127].Seq != 999 {
		t.Errorf("span range [%d,%d], want [872,999]", spans[0].Seq, spans[127].Seq)
	}
	for i := 1; i < len(spans); i++ {
		if spans[i].Seq != spans[i-1].Seq+1 {
			t.Fatalf("spans out of order at %d: %d after %d", i, spans[i].Seq, spans[i-1].Seq)
		}
	}
	if spans[0].Arg != 872 || spans[0].Clock != 872 {
		t.Errorf("oldest span payload = clock %d arg %d, want 872/872", spans[0].Clock, spans[0].Arg)
	}
}

// TestSamplerDeterministicRate pins the sampling contract: the same
// seed admits the identical target set (the property end-to-end trace
// stitching depends on), a different seed diverges, and the admit rate
// tracks 1/2^shift.
func TestSamplerDeterministicRate(t *testing.T) {
	const n = 1 << 16
	admitted := func(seed string, shift int) []uint64 {
		s := NewSampler([]byte(seed), shift)
		var out []uint64
		for i := uint64(0); i < n; i++ {
			if s.SampleAddr(addrN(i)) {
				out = append(out, i)
			}
		}
		return out
	}
	a, b := admitted("seed-a", 6), admitted("seed-a", 6)
	if len(a) != len(b) {
		t.Fatalf("same seed admitted %d vs %d targets", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at admit %d: %d vs %d", i, a[i], b[i])
		}
	}
	// 1/64 of 65536 = 1024 expected; allow ±35% (≈11σ would be a broken
	// PRF, this is a smoke bound, not a statistics test).
	if len(a) < 666 || len(a) > 1382 {
		t.Errorf("shift 6 admitted %d of %d, want ≈1024", len(a), n)
	}
	c := admitted("seed-b", 6)
	if len(a) == len(c) {
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds admitted identical target sets")
		}
	}
	// Shift 0 samples everything; SampleAddr must agree with Sample.
	all := NewSampler([]byte("x"), 0)
	for i := uint64(0); i < 100; i++ {
		a := addrN(i)
		if !all.SampleAddr(a) {
			t.Fatalf("shift 0 rejected target %d", i)
		}
		if all.Sample(binary.BigEndian.Uint64(a[0:8]), binary.BigEndian.Uint64(a[8:16])) != all.SampleAddr(a) {
			t.Fatal("Sample and SampleAddr disagree")
		}
	}
}

// fillTracer records a fixed span mix across two scan streams and one
// sim stream — the shape a sharded scan produces.
func fillTracer(tr *Tracer) {
	for i := uint64(0); i < 50; i++ {
		stream := int(i % 2)
		tr.Span(stream, SpanSent, i, addrN(i), 0)
		tr.Hop(tr.SimStream(0), 0x20010db8<<32, i, "router-1", "lan0", uint8(64-i%8), i%7 == 0)
		if i%5 == 0 {
			tr.Span(stream, SpanReply, i, addrN(i), 0)
		}
		if i%9 == 0 {
			tr.Span(stream, SpanRetry, i, addrN(i), 2)
		}
	}
	tr.Anomaly(AnomalyQuarantine, 0, 49, addrN(7))
}

// TestTracerNDJSONDeterministic: two tracers fed the identical seeded
// workload export byte-identical NDJSON, and the lines parse with the
// documented fields.
func TestTracerNDJSONDeterministic(t *testing.T) {
	opts := TracerOptions{Seed: []byte("ndjson"), ScanStreams: 2, SimStreams: 1, Depth: 256}
	var bufA, bufB bytes.Buffer
	trA, trB := NewTracer(opts), NewTracer(opts)
	fillTracer(trA)
	fillTracer(trB)
	if err := trA.WriteNDJSON(&bufA); err != nil {
		t.Fatal(err)
	}
	if err := trB.WriteNDJSON(&bufB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Fatal("identical workloads exported different NDJSON bytes")
	}
	lines := strings.Split(strings.TrimSpace(bufA.String()), "\n")
	if want := int(trA.SpansRecorded()); len(lines) != want {
		t.Fatalf("exported %d lines, recorded %d spans", len(lines), want)
	}
	hops := 0
	for _, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		if m["kind"] == "hop" {
			hops++
			if m["node"] != "router-1" || m["iface"] != "lan0" {
				t.Fatalf("hop span lost its location: %q", line)
			}
		}
	}
	if hops != 50 {
		t.Errorf("exported %d hop spans, want 50", hops)
	}
}

// TestTracerChromeTraceGolden pins the Perfetto/Chrome-trace export
// byte for byte on a tiny hand-built trace: one instant event per span,
// one track per stream, ts = sequence.
func TestTracerChromeTraceGolden(t *testing.T) {
	tr := NewTracer(TracerOptions{Seed: []byte("golden"), ScanStreams: 1, SimStreams: 1, Depth: 8})
	tr.Span(0, SpanSent, 3, addrN(1), 0)
	tr.Span(0, SpanRetry, 4, addrN(1), 2)
	tr.Hop(tr.SimStream(0), 0x20010db8<<32, 1, "cpe-0", "wan", 63, false)
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	want := `{"traceEvents":[
{"name":"sent","ph":"i","s":"t","pid":1,"tid":0,"ts":0,"args":{"clock":3,"addr":"2001:db8::1"}},
{"name":"retry","ph":"i","s":"t","pid":1,"tid":0,"ts":1,"args":{"clock":4,"addr":"2001:db8::1","arg":2}},
{"name":"hop","ph":"i","s":"t","pid":1,"tid":1,"ts":0,"args":{"clock":0,"addr":"2001:db8::1","node":"cpe-0","iface":"wan","hop":63,"drop":false}}
]}
`
	if buf.String() != want {
		t.Fatalf("Chrome trace drifted from the golden:\ngot:\n%s\nwant:\n%s", buf.String(), want)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 3 {
		t.Fatalf("parsed %d events, want 3", len(doc.TraceEvents))
	}
}

// TestTracerExemplarCapture: an anomaly freezes the firing stream's
// most recent spans into a slot, first-N slots capture, later anomalies
// only count.
func TestTracerExemplarCapture(t *testing.T) {
	tr := NewTracer(TracerOptions{Seed: []byte("ex"), ScanStreams: 1, Depth: 64, Exemplars: 2})
	for i := uint64(0); i < 40; i++ {
		tr.Span(0, SpanSent, i, addrN(i), 0)
	}
	tr.Anomaly(AnomalyAlias, 0, 40, addrN(3))
	ex := tr.Exemplars()
	if len(ex) != 1 {
		t.Fatalf("captured %d exemplars, want 1", len(ex))
	}
	e := ex[0]
	if e.Kind != AnomalyAlias || e.Clock != 40 || e.Stream != 0 || e.Addr != addrN(3) {
		t.Fatalf("exemplar header = %+v", e)
	}
	if e.N != ExemplarSpans {
		t.Fatalf("exemplar holds %d spans, want %d", e.N, ExemplarSpans)
	}
	// The tail must be the most recent ExemplarSpans spans, in order.
	for i := 0; i < e.N; i++ {
		if want := uint64(40 - ExemplarSpans + i); e.Spans[i].Clock != want {
			t.Fatalf("exemplar span %d has clock %d, want %d", i, e.Spans[i].Clock, want)
		}
	}
	for k := AnomalyKind(0); int(k) < 6; k++ {
		tr.Anomaly(AnomalyShed, 0, 41, addrN(0))
	}
	if got := tr.ExemplarCount(); got != 2 {
		t.Errorf("ExemplarCount = %d, want capacity 2", got)
	}
	if got := tr.AnomalyCount(); got != 7 {
		t.Errorf("AnomalyCount = %d, want 7 (every firing counted)", got)
	}
}

// TestTracerRecordAllocFree: the hot-path recording primitives — the
// sampling decision, span recording, hop recording — allocate nothing.
func TestTracerRecordAllocFree(t *testing.T) {
	tr := NewTracer(TracerOptions{Seed: []byte("alloc"), ScanStreams: 2, SimStreams: 1, Depth: 128})
	a := addrN(7)
	var i uint64
	allocs := testing.AllocsPerRun(1000, func() {
		i++
		tr.SampleAddr(a)
		tr.Span(0, SpanSent, i, a, 0)
		tr.Hop(tr.SimStream(0), 1, i, "node", "iface", 64, false)
	})
	if allocs != 0 {
		t.Errorf("recording allocates %.1f/op, want 0", allocs)
	}
}

// TestTracerNilSafe: every tracer and watchdog method is a no-op on a
// nil receiver — the detached fast path the scanner wires
// unconditionally.
func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	if tr.Sample(1, 2) || tr.SampleAddr(addrN(1)) {
		t.Error("nil tracer sampled a target")
	}
	tr.Span(0, SpanSent, 1, addrN(1), 0)
	tr.Hop(0, 1, 2, "n", "i", 64, false)
	tr.Anomaly(AnomalyShed, 0, 1, addrN(1))
	if tr.SpansRecorded() != 0 || tr.ExemplarCount() != 0 || tr.AnomalyCount() != 0 {
		t.Error("nil tracer reports recorded state")
	}
	if tr.Exemplars() != nil || tr.LastKind(0) != 0 || tr.Streams() != 0 || tr.SimStream(3) != 0 {
		t.Error("nil tracer accessors returned non-zero values")
	}
	if err := tr.WriteNDJSON(io.Discard); err != nil {
		t.Error(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Error(err)
	}
	if buf.String() != "{\"traceEvents\":[]}\n" {
		t.Errorf("nil Chrome trace = %q", buf.String())
	}
	var wd *Watchdog
	wd.Stage(0, "send")
	wd.Beat(0, 1, 2, 3)
	if wd.Check(10) != nil {
		t.Error("nil watchdog diagnosed a stall")
	}
}

// TestTracerConcurrentStress hammers recording across streams together
// with anomalies and every reader; run under -race in CI, the test
// itself only asserts the lifetime counts survive.
func TestTracerConcurrentStress(t *testing.T) {
	tr := NewTracer(TracerOptions{Seed: []byte("race"), ScanStreams: 4, SimStreams: 2, Depth: 64, Exemplars: 4})
	const perStream = 2000
	var wg sync.WaitGroup
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := uint64(0); i < perStream; i++ {
				tr.Span(s, SpanSent, i, addrN(i), 0)
				if i%97 == 0 {
					tr.Anomaly(AnomalyRetryExhausted, s, i, addrN(i))
				}
			}
		}(s)
	}
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := uint64(0); i < perStream; i++ {
				tr.Hop(tr.SimStream(s), 1, i, "node", "iface", 64, false)
			}
		}(s)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			tr.SpansRecorded()
			tr.Exemplars()
			tr.LastKind(i % 6)
			_ = tr.WriteNDJSON(io.Discard)
			_ = tr.WriteChromeTrace(io.Discard)
		}
	}()
	wg.Wait()
	if got := tr.SpansRecorded(); got != 6*perStream {
		t.Errorf("SpansRecorded = %d, want %d", got, 6*perStream)
	}
	if got := tr.ExemplarCount(); got != 4 {
		t.Errorf("ExemplarCount = %d, want capacity 4", got)
	}
}

// TestWatchdogDiagnosis drives the full watchdog lifecycle: baseline,
// progress exemption, stall detection with the trace-stream last-span,
// recovery, and the StageDone exemption.
func TestWatchdogDiagnosis(t *testing.T) {
	tr := NewTracer(TracerOptions{Seed: []byte("wd"), ScanStreams: 2, Depth: 16})
	wd := NewWatchdog(2, 4, tr)
	wd.Stage(0, "send")
	wd.Stage(1, "send")
	tr.Span(1, SpanRingStall, 9, addrN(1), 3)

	// Clock 1 baselines; nothing can be diagnosed yet.
	if ds := wd.Check(1); len(ds) != 0 {
		t.Fatalf("first Check diagnosed %v", ds)
	}
	// Shard 0 makes progress each tick, shard 1 freezes at sent=5 — a
	// cursor move observed at clock 2, idle ever after.
	wd.Beat(1, 5, 7, 11)
	for clock := uint64(2); clock < 6; clock++ {
		wd.Beat(0, clock*10, 0, 0)
		if ds := wd.Check(clock); len(ds) != 0 {
			t.Fatalf("clock %d below threshold diagnosed %v", clock, ds)
		}
	}
	wd.Beat(0, 100, 0, 0)
	ds := wd.Check(6) // shard 1 idle since clock 2: 4 ticks = threshold
	if len(ds) != 1 {
		t.Fatalf("got %d diagnoses, want 1: %v", len(ds), ds)
	}
	d := ds[0]
	if d.Shard != 1 || d.Stage != "send" || d.Sent != 5 || d.RingDepth != 7 ||
		d.DrainAge != 11 || d.Beats != 1 || d.StalledFor != 4 || d.LastSpan != "ring-stall" {
		t.Fatalf("diagnosis = %+v", d)
	}
	want := `watchdog: shard 1 stalled in stage "send" for 4 ticks (sent=5, ring=7, drain-age=11, beats=1, last-span=ring-stall)`
	if d.String() != want {
		t.Errorf("String() = %q, want %q", d.String(), want)
	}
	// Progress clears the stall; StageDone exempts a frozen cursor.
	wd.Beat(1, 6, 0, 0)
	if ds := wd.Check(7); len(ds) != 0 {
		t.Fatalf("progress did not clear the stall: %v", ds)
	}
	wd.Stage(0, StageDone)
	wd.Stage(1, StageDone)
	if ds := wd.Check(100); len(ds) != 0 {
		t.Fatalf("done shard diagnosed: %v", ds)
	}
	if ds := wd.Check(1 << 40); len(ds) != 0 {
		t.Fatalf("done shard diagnosed at far clock: %v", ds)
	}
}

// TestWatchdogWithoutTracer: a watchdog with no tracer attached reports
// last-span "none" instead of panicking.
func TestWatchdogWithoutTracer(t *testing.T) {
	wd := NewWatchdog(1, 2, nil)
	wd.Stage(0, "drain")
	wd.Check(1)
	ds := wd.Check(3)
	if len(ds) != 1 {
		t.Fatalf("got %d diagnoses, want 1", len(ds))
	}
	if ds[0].LastSpan != "none" {
		t.Errorf("LastSpan = %q, want \"none\"", ds[0].LastSpan)
	}
}

// TestSpanKindNamesComplete mirrors TestCounterNamesComplete for the
// span and anomaly vocabularies.
func TestSpanKindNamesComplete(t *testing.T) {
	for k := SpanSent; k <= SpanShed; k++ {
		if k.String() == "unknown" {
			t.Errorf("span kind %d has no name", k)
		}
	}
	if SpanKind(0).String() != "unknown" || SpanKind(200).String() != "unknown" {
		t.Error("out-of-range span kinds must read unknown")
	}
	for k := AnomalyQuarantine; k <= AnomalyShed; k++ {
		if k.String() == "unknown" {
			t.Errorf("anomaly kind %d has no name", k)
		}
	}
	seen := map[string]bool{}
	for k := SpanSent; k <= SpanShed; k++ {
		if seen[k.String()] {
			t.Errorf("duplicate span kind name %q", k.String())
		}
		seen[k.String()] = true
	}
	_ = fmt.Sprintf("%v", SpanSent) // String wired into fmt
}
