package telemetry

import (
	"math/bits"
	"sync/atomic"
)

// histBuckets is the fixed bucket count: bucket 0 holds the value 0 and
// bucket i (1..63) holds [2^(i-1), 2^i) — the full uint64 range with no
// configuration and a branch-free slot computation.
const histBuckets = 65

// histogram is a power-of-two-bucket histogram over uint64 samples.
// Observation is two atomic adds into fixed slots — no locks, no
// allocation — so it sits on the scan hot path; Count/Sum/quantiles are
// derived at snapshot time.
type histogram struct {
	buckets [histBuckets]atomic.Uint64
	sum     atomic.Uint64
}

// histBucket returns the slot for v: 0 for 0, else 1+floor(log2 v).
func histBucket(v uint64) int { return bits.Len64(v) }

// histBucketBounds returns the inclusive-lo/exclusive-hi value range of
// slot i.
func histBucketBounds(i int) (lo, hi uint64) {
	if i == 0 {
		return 0, 1
	}
	lo = uint64(1) << (i - 1)
	if i >= 64 {
		return lo, ^uint64(0)
	}
	return lo, uint64(1) << i
}

func (h *histogram) observe(v uint64) {
	h.buckets[histBucket(v)].Add(1)
	h.sum.Add(v)
}

// HistBucket is one populated histogram bucket in a snapshot: samples
// with Lo <= v < Hi.
type HistBucket struct {
	Lo uint64 `json:"lo"`
	Hi uint64 `json:"hi"`
	N  uint64 `json:"n"`
}

// HistSnapshot is a merged, read-only view of one histogram across all
// shards.
type HistSnapshot struct {
	Count   uint64       `json:"count"`
	Sum     uint64       `json:"sum"`
	Buckets []HistBucket `json:"buckets"`
	P50     uint64       `json:"p50"`
	P90     uint64       `json:"p90"`
	P99     uint64       `json:"p99"`
}

// Quantile returns an upper bound for the q-quantile (0 <= q <= 1): the
// exclusive upper edge of the bucket holding the q-th sample, minus one
// (the largest value that bucket can contain). Bucket resolution is the
// power of two below the value, the standard trade of this layout.
func (s *HistSnapshot) Quantile(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	rank := uint64(q * float64(s.Count))
	if rank >= s.Count {
		rank = s.Count - 1
	}
	var seen uint64
	for _, b := range s.Buckets {
		seen += b.N
		if seen > rank {
			return b.Hi - 1
		}
	}
	return s.Buckets[len(s.Buckets)-1].Hi - 1
}

// mergeHist folds shard histograms for slot h into one snapshot; nil is
// returned when no sample was ever observed (the snapshot omits the
// histogram).
func mergeHist(shards []*Shard, h Hist) *HistSnapshot {
	var counts [histBuckets]uint64
	out := &HistSnapshot{}
	for _, sh := range shards {
		hist := &sh.hists[h]
		for i := range counts {
			counts[i] += hist.buckets[i].Load()
		}
		out.Sum += hist.sum.Load()
	}
	for i, n := range counts {
		if n == 0 {
			continue
		}
		lo, hi := histBucketBounds(i)
		out.Buckets = append(out.Buckets, HistBucket{Lo: lo, Hi: hi, N: n})
		out.Count += n
	}
	if out.Count == 0 {
		return nil
	}
	out.P50 = out.Quantile(0.50)
	out.P90 = out.Quantile(0.90)
	out.P99 = out.Quantile(0.99)
	return out
}
