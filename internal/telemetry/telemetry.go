// Package telemetry is the scan observability layer: a stdlib-only,
// allocation-free metrics and tracing core shared by the scanner, the
// simulation engine, the retry/AIMD machinery and the loop scanner.
//
// The design follows the ZMap/XMap monitor-thread architecture the
// paper's tooling inherits (Section IV): the hot path only increments
// fixed-slot atomic counters and writes into preallocated rings, while
// a separate reader — the status-line monitor, the expvar endpoint, a
// snapshot dump — merges per-shard state on demand. Three pieces:
//
//   - a metrics registry (Registry) of fixed-slot counters, gauges and
//     power-of-two-bucket histograms, sharded per scan shard so
//     concurrent scanner goroutines never contend, merged only at
//     Snapshot time;
//   - a flight recorder (Ring): a bounded per-shard ring of recent
//     packet events — probe sent, reply, ICMPv6 error, retry, AIMD
//     window change, checkpoint cut — dumpable as JSON on demand, on
//     SIGQUIT, or when a simulation-test oracle fails;
//   - exposition: a deterministic Snapshot JSON document, a ZMap-style
//     periodic status line (Monitor), and an optional net/http endpoint
//     serving expvar and pprof (Serve).
//
// Every mutator is safe for concurrent use and nil-receiver safe, so
// instrumented code paths need no "is telemetry attached?" branches of
// their own.
package telemetry

import (
	"sync"
	"sync/atomic"
)

// Counter identifies one fixed counter slot. Counters are cumulative
// and monotone; each layer of the stack owns a named group.
type Counter uint8

// Counter slots. The scan.* group backs xmap.Stats, sim.* the netsim
// engine totals (the per-link LinkStats aggregate), loop.* the loopscan
// detector, and inject.* the simtest fault injector — one snapshot
// covers the whole stack.
const (
	ScanTargets Counter = iota
	ScanSent
	ScanSendErrors
	ScanReceived
	ScanInvalid
	ScanDuplicates
	ScanUnique
	ScanBlocked
	ScanRetried
	ScanRetryDropped
	ScanRetryExhausted
	ScanRetryAbandoned
	ScanRateUp
	ScanRateDown
	ScanCheckpoints
	ScanAliasDetected
	ScanAliasCooldown
	ScanAliasBlocked
	ScanQuarantined
	ScanShed
	SimEvents
	SimTransmissions
	SimBytes
	SimDropped
	SimFastPathHits
	SimFastPathMisses
	SimFastPathInvalidations
	SimFastPathBatched
	LoopProbes
	LoopResponses
	LoopConfirmed
	InjectTransmissions
	InjectDropped
	InjectDuplicated
	InjectDelayed
	NumCounters // sentinel: number of counter slots
)

var counterNames = [NumCounters]string{
	ScanTargets:              "scan.targets",
	ScanSent:                 "scan.sent",
	ScanSendErrors:           "scan.send_errors",
	ScanReceived:             "scan.received",
	ScanInvalid:              "scan.invalid",
	ScanDuplicates:           "scan.duplicates",
	ScanUnique:               "scan.unique",
	ScanBlocked:              "scan.blocked",
	ScanRetried:              "scan.retried",
	ScanRetryDropped:         "scan.retry_dropped",
	ScanRetryExhausted:       "scan.retry_exhausted",
	ScanRetryAbandoned:       "scan.retry_abandoned",
	ScanRateUp:               "scan.rate_up",
	ScanRateDown:             "scan.rate_down",
	ScanCheckpoints:          "scan.checkpoints",
	ScanAliasDetected:        "scan.alias.detected",
	ScanAliasCooldown:        "scan.alias.cooldown",
	ScanAliasBlocked:         "scan.alias.blocked",
	ScanQuarantined:          "scan.replies.quarantined",
	ScanShed:                 "scan.shed",
	SimEvents:                "sim.events",
	SimTransmissions:         "sim.transmissions",
	SimBytes:                 "sim.bytes",
	SimDropped:               "sim.dropped",
	SimFastPathHits:          "sim.fastpath.hits",
	SimFastPathMisses:        "sim.fastpath.misses",
	SimFastPathInvalidations: "sim.fastpath.invalidations",
	SimFastPathBatched:       "sim.fastpath.batched",
	LoopProbes:               "loop.probes",
	LoopResponses:            "loop.responses",
	LoopConfirmed:            "loop.confirmed",
	InjectTransmissions:      "inject.transmissions",
	InjectDropped:            "inject.dropped",
	InjectDuplicated:         "inject.duplicated",
	InjectDelayed:            "inject.delayed",
}

// String returns the counter's snapshot key.
func (c Counter) String() string {
	if int(c) < len(counterNames) {
		return counterNames[c]
	}
	return "counter(?)"
}

// Gauge identifies one fixed gauge slot (a point-in-time level, not a
// cumulative count).
type Gauge uint8

// Gauge slots.
const (
	// GaugeWindow is the scanner's current send window (probes between
	// receive drains), the AIMD-controlled quantity.
	GaugeWindow Gauge = iota
	// GaugeRetryPending is the retry ring's pending-target level.
	GaugeRetryPending
	NumGauges // sentinel
)

var gaugeNames = [NumGauges]string{
	GaugeWindow:       "scan.window",
	GaugeRetryPending: "scan.retry_pending",
}

// String returns the gauge's snapshot key.
func (g Gauge) String() string {
	if int(g) < len(gaugeNames) {
		return gaugeNames[g]
	}
	return "gauge(?)"
}

// Hist identifies one fixed histogram slot.
type Hist uint8

// Histogram slots.
const (
	// HistReplyHopLimit observes the arriving hop limit of every
	// validated response — the distance fingerprint rate-limit and
	// loop diagnosis lean on.
	HistReplyHopLimit Hist = iota
	// HistDrainBatch observes how many packets each receive drain
	// returned.
	HistDrainBatch
	// HistReplyLatency observes probe-clock reply latency (probes sent
	// between a target's probe and its validated answer); populated
	// when the retry scheduler tracks outstanding targets.
	HistReplyLatency
	NumHists // sentinel
)

var histNames = [NumHists]string{
	HistReplyHopLimit: "reply_hoplimit",
	HistDrainBatch:    "drain_batch",
	HistReplyLatency:  "reply_latency_probes",
}

// String returns the histogram's snapshot key.
func (h Hist) String() string {
	if int(h) < len(histNames) {
		return histNames[h]
	}
	return "hist(?)"
}

// Shard is one scan shard's private metrics slice: fixed arrays of
// atomics plus the shard's flight-recorder ring. A shard is written by
// its scanner goroutine and read concurrently by snapshotters; all
// methods are nil-receiver safe so detached code paths cost one branch.
type Shard struct {
	counters [NumCounters]atomic.Uint64
	gauges   [NumGauges]atomic.Int64
	hists    [NumHists]histogram
	ring     *Ring
}

// Inc adds one to a counter slot.
func (s *Shard) Inc(c Counter) {
	if s != nil {
		s.counters[c].Add(1)
	}
}

// Add adds n to a counter slot.
func (s *Shard) Add(c Counter, n uint64) {
	if s != nil {
		s.counters[c].Add(n)
	}
}

// Counter reads one counter slot.
func (s *Shard) Counter(c Counter) uint64 {
	if s == nil {
		return 0
	}
	return s.counters[c].Load()
}

// SetGauge stores a gauge level.
func (s *Shard) SetGauge(g Gauge, v int64) {
	if s != nil {
		s.gauges[g].Store(v)
	}
}

// Gauge reads one gauge slot.
func (s *Shard) Gauge(g Gauge) int64 {
	if s == nil {
		return 0
	}
	return s.gauges[g].Load()
}

// Observe records one histogram sample.
func (s *Shard) Observe(h Hist, v uint64) {
	if s != nil {
		s.hists[h].observe(v)
	}
}

// Trace records one flight-recorder event (a no-op when telemetry is
// detached or tracing disabled).
func (s *Shard) Trace(kind EventKind, clock uint64, addr [16]byte, arg uint64) {
	if s != nil {
		s.ring.Record(kind, clock, addr, arg)
	}
}

// Ring returns the shard's flight-recorder ring (nil when telemetry is
// detached or tracing disabled; Ring methods are nil-safe too).
func (s *Shard) Ring() *Ring {
	if s == nil {
		return nil
	}
	return s.ring
}

// Collector folds externally maintained counts into a snapshot. Layers
// that already serialize internally (the simulation engine counts under
// its own lock) register a collector instead of paying atomics on their
// hot path; collectors run on the snapshot reader, merge-on-read.
type Collector func(add func(c Counter, n uint64))

// DefaultTraceDepth is the per-shard flight-recorder capacity when
// Options.TraceDepth is zero.
const DefaultTraceDepth = 4096

// Options parameterizes a Registry.
type Options struct {
	// Shards is the number of independent metric shards (one per scan
	// shard; <=0 means 1).
	Shards int
	// TraceDepth is the per-shard flight-recorder ring capacity,
	// rounded up to a power of two (0 = DefaultTraceDepth, <0 disables
	// tracing).
	TraceDepth int
}

// Registry owns the sharded metric state. All methods are safe for
// concurrent use; a nil *Registry is a valid detached registry whose
// Shard method returns a nil (no-op) shard.
type Registry struct {
	shards     []*Shard
	colMu      sync.Mutex
	collectors []Collector
	tracerMu   sync.Mutex
	tracer     *Tracer
}

// New creates a registry with o.Shards independent shards.
func New(o Options) *Registry {
	n := o.Shards
	if n <= 0 {
		n = 1
	}
	depth := o.TraceDepth
	if depth == 0 {
		depth = DefaultTraceDepth
	}
	r := &Registry{shards: make([]*Shard, n)}
	for i := range r.shards {
		sh := &Shard{}
		if depth > 0 {
			sh.ring = newRing(depth)
		}
		r.shards[i] = sh
	}
	return r
}

// NumShards returns the shard count (0 for a nil registry).
func (r *Registry) NumShards() int {
	if r == nil {
		return 0
	}
	return len(r.shards)
}

// Shard returns shard i's metrics slice (modulo the shard count, so a
// scan sharded wider than the registry still lands somewhere). A nil
// registry returns a nil, no-op shard.
func (r *Registry) Shard(i int) *Shard {
	if r == nil || len(r.shards) == 0 {
		return nil
	}
	if i < 0 {
		i = 0
	}
	return r.shards[i%len(r.shards)]
}

// Register adds a snapshot-time collector for counts maintained outside
// the registry (e.g. the simulation engine's serialized totals).
func (r *Registry) Register(c Collector) {
	if r == nil || c == nil {
		return
	}
	r.colMu.Lock()
	r.collectors = append(r.collectors, c)
	r.colMu.Unlock()
}

// AttachTracer associates a span tracer with the registry, so the
// snapshot, the monitor line, the /trace endpoint and the SIGQUIT dump
// all report the sampled span streams alongside the flight recorder.
func (r *Registry) AttachTracer(t *Tracer) {
	if r == nil {
		return
	}
	r.tracerMu.Lock()
	r.tracer = t
	r.tracerMu.Unlock()
}

// Tracer returns the attached span tracer (nil when none, or on a nil
// registry).
func (r *Registry) Tracer() *Tracer {
	if r == nil {
		return nil
	}
	r.tracerMu.Lock()
	defer r.tracerMu.Unlock()
	return r.tracer
}

// Events returns every shard's flight-recorder contents, shard by shard
// in recording order (oldest first within a shard).
func (r *Registry) Events() []Event {
	if r == nil {
		return nil
	}
	var out []Event
	for _, sh := range r.shards {
		out = sh.ring.AppendEvents(out)
	}
	return out
}
