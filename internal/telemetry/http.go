package telemetry

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
)

// expvarReg is the registry the process-wide expvar "telemetry" var
// reads; Serve repoints it so the last-served registry wins (expvar
// names are global and cannot be re-published).
var expvarReg atomic.Pointer[Registry]

// expvarPublished guards the one-time Publish.
var expvarPublished atomic.Bool

// Handler returns the registry's HTTP mux:
//
//	/telemetry    merged Snapshot JSON
//	/trace        flight-recorder dump JSON
//	/debug/vars   expvar (includes the "telemetry" var)
//	/debug/pprof  the standard pprof index and profiles
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/telemetry", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteJSON(w)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.DumpTrace(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve exposes the registry over HTTP on addr (the -listen flag): the
// snapshot, the flight recorder, expvar and pprof. It returns the
// running server and its bound address; callers Close the server when
// the scan ends. The registry is also published as the expvar var
// "telemetry" so stock expvar scrapers see it.
func (r *Registry) Serve(addr string) (*http.Server, net.Addr, error) {
	expvarReg.Store(r)
	if expvarPublished.CompareAndSwap(false, true) {
		expvar.Publish("telemetry", expvar.Func(func() any {
			return expvarReg.Load().Snapshot()
		}))
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: r.Handler()}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr(), nil
}
