package telemetry

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// collectTotals merges counters across shards and collectors into a
// fixed array — the allocation-free core Snapshot and Monitor share.
func (r *Registry) collectTotals() [NumCounters]uint64 {
	var totals [NumCounters]uint64
	if r == nil {
		return totals
	}
	for _, sh := range r.shards {
		for c := Counter(0); c < NumCounters; c++ {
			totals[c] += sh.counters[c].Load()
		}
	}
	r.colMu.Lock()
	cols := r.collectors
	r.colMu.Unlock()
	for _, col := range cols {
		col(func(c Counter, n uint64) {
			if c < NumCounters {
				totals[c] += n
			}
		})
	}
	return totals
}

// CounterTotal sums one counter slot across shards (collectors are not
// consulted — this is the cheap probe-clock read the monitor polls).
func (r *Registry) CounterTotal(c Counter) uint64 {
	if r == nil {
		return 0
	}
	var n uint64
	for _, sh := range r.shards {
		n += sh.counters[c].Load()
	}
	return n
}

// GaugeTotal sums one gauge slot across shards.
func (r *Registry) GaugeTotal(g Gauge) int64 {
	if r == nil {
		return 0
	}
	var n int64
	for _, sh := range r.shards {
		n += sh.gauges[g].Load()
	}
	return n
}

// Monitor renders the ZMap-style periodic status line:
//
//	0:00:02 41.2%; send: 840 (412 p/s); recv: 37 hits, 4.40% hit rate;
//	drops: 12; retries: 3; window: 64; ETA 0:00:03
//
// Cadence is the probe clock: Tick (called by the scanner once per
// drain window) prints whenever Every more targets have been probed
// since the last line, so the cadence is deterministic in simulation
// however fast the virtual network runs; a wall-clock driver gets the
// same lines simply because the probe clock advances in real time.
// Rates and ETA come from the wall clock. A nil *Monitor no-ops.
type Monitor struct {
	mu    sync.Mutex
	reg   *Registry
	w     io.Writer
	every uint64
	total uint64
	now   func() time.Time

	started     bool
	start       time.Time
	lastTargets uint64
	lines       uint64
}

// NewMonitor creates a monitor over reg writing to w every
// everyTargets probed targets (<=0 means 1000).
func NewMonitor(reg *Registry, w io.Writer, everyTargets int) *Monitor {
	if everyTargets <= 0 {
		everyTargets = 1000
	}
	return &Monitor{reg: reg, w: w, every: uint64(everyTargets), now: time.Now}
}

// SetTotal declares the expected target count, enabling the progress
// percentage and the ETA term.
func (m *Monitor) SetTotal(n uint64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.total = n
	m.mu.Unlock()
}

// SetNow overrides the wall-clock source (tests).
func (m *Monitor) SetNow(f func() time.Time) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.now = f
	m.mu.Unlock()
}

// Lines returns how many status lines were printed.
func (m *Monitor) Lines() uint64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lines
}

// Tick prints a status line if the probe clock has advanced Every
// targets since the last one. The scanner calls it once per drain
// window; the due-ness check is allocation-free.
func (m *Monitor) Tick() {
	if m == nil {
		return
	}
	targets := m.reg.CounterTotal(ScanTargets)
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.started {
		m.started, m.start, m.lastTargets = true, m.now(), 0
	}
	if targets-m.lastTargets < m.every {
		return
	}
	m.lastTargets = targets - targets%m.every
	m.lineLocked(targets, false)
}

// Final prints one closing line regardless of cadence.
func (m *Monitor) Final() {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.started {
		m.started, m.start = true, m.now()
	}
	m.lineLocked(m.reg.CounterTotal(ScanTargets), true)
}

func (m *Monitor) lineLocked(targets uint64, final bool) {
	t := m.reg.collectTotals()
	elapsed := m.now().Sub(m.start)
	var rate float64
	if secs := elapsed.Seconds(); secs > 0 {
		rate = float64(t[ScanSent]) / secs
	}
	var hit float64
	if t[ScanSent] > 0 {
		hit = 100 * float64(t[ScanUnique]) / float64(t[ScanSent])
	}
	drops := t[ScanSendErrors] + t[SimDropped]
	fmt.Fprintf(m.w, "%s", fmtDuration(elapsed))
	if m.total > 0 {
		fmt.Fprintf(m.w, " %.1f%%", 100*float64(targets)/float64(m.total))
	}
	fmt.Fprintf(m.w, "; send: %d (%.0f p/s); recv: %d hits, %.2f%% hit rate; drops: %d; retries: %d; window: %d",
		t[ScanSent], rate, t[ScanUnique], hit, drops, t[ScanRetried], m.reg.GaugeTotal(GaugeWindow))
	if att := t[SimFastPathHits] + t[SimFastPathMisses]; att > 0 {
		fmt.Fprintf(m.w, "; fastpath: %.1f%%", 100*float64(t[SimFastPathHits])/float64(att))
	}
	// The hostile term appears only once the defenses have something to
	// report, mirroring the conditional fastpath term.
	if t[ScanAliasDetected]+t[ScanQuarantined]+t[ScanShed] > 0 {
		fmt.Fprintf(m.w, "; hostile: %d blocked, %d quarantined, %d shed",
			t[ScanAliasBlocked], t[ScanQuarantined], t[ScanShed])
	}
	// The trace term appears only once the span tracer has recorded
	// something, mirroring the conditional fastpath/hostile terms.
	if tr := m.reg.Tracer(); tr != nil {
		if n := tr.SpansRecorded(); n > 0 {
			fmt.Fprintf(m.w, "; trace: %d spans, %d exemplars", n, tr.ExemplarCount())
		}
	}
	switch {
	case final:
		fmt.Fprintf(m.w, "; done\n")
	case m.total > 0 && targets > 0 && targets < m.total && elapsed > 0:
		remain := time.Duration(float64(elapsed) * float64(m.total-targets) / float64(targets))
		fmt.Fprintf(m.w, "; ETA %s\n", fmtDuration(remain))
	default:
		fmt.Fprintln(m.w)
	}
	m.lines++
}

// fmtDuration renders h:mm:ss, ZMap-style.
func fmtDuration(d time.Duration) string {
	if d < 0 {
		d = 0
	}
	s := int64(d / time.Second)
	return fmt.Sprintf("%d:%02d:%02d", s/3600, s/60%60, s%60)
}
