package telemetry

import (
	"encoding/json"
	"io"
)

// Snapshot is a merged, read-only view of the registry: per-shard
// counters summed, collectors folded in, histograms merged. Marshaling
// a Snapshot is deterministic — maps marshal with sorted keys and no
// wall-clock field is included — so two identical seeded runs produce
// byte-identical documents (the golden-test property).
type Snapshot struct {
	// Shards is the registry's shard count.
	Shards int `json:"shards"`
	// Counters maps counter names to merged totals; zero counters are
	// included so the document doubles as the schema.
	Counters map[string]uint64 `json:"counters"`
	// Gauges maps gauge names to the per-shard sum (for levels like the
	// send window this is the fleet-wide aggregate; divide by Shards
	// for a mean).
	Gauges map[string]int64 `json:"gauges"`
	// Histograms maps histogram names to merged bucket views; empty
	// histograms are omitted.
	Histograms map[string]*HistSnapshot `json:"histograms"`
	// PerShard breaks the counters down by shard (only with >1 shard;
	// zero slots are omitted per shard).
	PerShard []map[string]uint64 `json:"per_shard,omitempty"`
	// TraceRecorded is the total flight-recorder events ever recorded
	// across shards.
	TraceRecorded uint64 `json:"trace_recorded"`
	// TraceSpans is the total lifecycle spans the attached span tracer
	// recorded across streams (0 when no tracer is attached).
	TraceSpans uint64 `json:"trace_spans"`
	// TraceExemplars is how many anomaly exemplars the tracer captured.
	TraceExemplars uint64 `json:"trace_exemplars"`
}

// HitRate is unique responders per probe sent.
func (s *Snapshot) HitRate() float64 {
	sent := s.Counters[ScanSent.String()]
	if sent == 0 {
		return 0
	}
	return float64(s.Counters[ScanUnique.String()]) / float64(sent)
}

// Snapshot merges the registry's shards and collectors into one
// consistent-enough view (counters are read atomically slot by slot;
// cross-slot skew is bounded by whatever the writers did mid-read,
// which a monitor display tolerates and a quiesced scan never sees).
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]*HistSnapshot{},
	}
	if r == nil {
		return s
	}
	s.Shards = len(r.shards)
	totals := [NumCounters]uint64{}
	for _, sh := range r.shards {
		for c := Counter(0); c < NumCounters; c++ {
			totals[c] += sh.counters[c].Load()
		}
		s.TraceRecorded += sh.ring.Recorded()
	}
	if t := r.Tracer(); t != nil {
		s.TraceSpans = t.SpansRecorded()
		s.TraceExemplars = uint64(t.ExemplarCount())
	}
	r.colMu.Lock()
	cols := append([]Collector(nil), r.collectors...)
	r.colMu.Unlock()
	for _, col := range cols {
		col(func(c Counter, n uint64) {
			if c < NumCounters {
				totals[c] += n
			}
		})
	}
	for c := Counter(0); c < NumCounters; c++ {
		s.Counters[c.String()] = totals[c]
	}
	for g := Gauge(0); g < NumGauges; g++ {
		var v int64
		for _, sh := range r.shards {
			v += sh.gauges[g].Load()
		}
		s.Gauges[g.String()] = v
	}
	for h := Hist(0); h < NumHists; h++ {
		if hs := mergeHist(r.shards, h); hs != nil {
			s.Histograms[h.String()] = hs
		}
	}
	if len(r.shards) > 1 {
		for _, sh := range r.shards {
			m := map[string]uint64{}
			for c := Counter(0); c < NumCounters; c++ {
				if v := sh.counters[c].Load(); v > 0 {
					m[c.String()] = v
				}
			}
			s.PerShard = append(s.PerShard, m)
		}
	}
	return s
}

// WriteJSON writes the snapshot as one indented, deterministic JSON
// document — the -status-json artifact.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
