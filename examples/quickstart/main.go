// Quickstart: build a small simulated ISP, point the XMap scanner at its
// sub-prefix window, and print every periphery the unreachable-message
// technique exposes — the paper's core idea in ~60 lines.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/topo"
	"repro/internal/xmap"
)

var seed = flag.Int64("seed", 7, "simulation seed (same seed, same output)")

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// One ISP (China Mobile broadband), ~50 simulated home routers, each
	// delegated a /60 from the provider block.
	dep, err := topo.Build(topo.Config{
		Seed:             *seed,
		Scale:            0.0001,
		WindowWidth:      10,
		MaxDevicesPerISP: 50,
		OnlyISPs:         []int{13},
	})
	if err != nil {
		return err
	}
	isp := dep.ISPs[0]
	fmt.Printf("ISP block %s, scanning window %s (%d sub-prefixes)\n",
		isp.Block, isp.Window, 1<<isp.Window.Width())

	// The scanner sends one ICMPv6 echo to a nonexistent address per
	// sub-prefix; the periphery's RFC 4443 unreachable reply exposes its
	// WAN address.
	scanner, err := xmap.New(xmap.Config{
		Window: isp.Window,
		Seed:   []byte(fmt.Sprintf("quickstart-%d", *seed)),
	}, xmap.NewSimDriver(dep.Engine, dep.Edge))
	if err != nil {
		return err
	}

	found := 0
	stats, err := scanner.Run(context.Background(), func(r xmap.Response) {
		// Ground truth lets the example annotate each discovery.
		if dev, ok := dep.DeviceByWAN(r.Responder); ok {
			found++
			fmt.Printf("  periphery %-40s vendor=%-14s via %s (probe %s)\n",
				r.Responder, dev.Vendor, r.Kind, r.ProbeDst)
		}
	})
	if err != nil {
		return err
	}
	fmt.Printf("sent %d probes, discovered %d of %d simulated peripheries (hit rate %.2f%%)\n",
		stats.Sent, found, len(isp.Devices), 100*stats.HitRate())
	return nil
}
