// Routing loop: the Section VI study — sweep an ISP for the flawed
// routing implementation with the h / h+2 method, then measure the DoS
// amplification one crafted packet achieves on a victim access link, and
// finally run the Table XII lab test on the 99 modelled routers.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/ipv6"
	"repro/internal/loopscan"
	"repro/internal/report"
	"repro/internal/topo"
	"repro/internal/uint128"
	"repro/internal/xmap"
)

var seed = flag.Int64("seed", 17, "simulation seed (same seed, same output)")

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "routing_loop:", err)
		os.Exit(1)
	}
}

func run() error {
	// China Unicom broadband: 78.9% of its last hops loop (Table XI).
	dep, err := topo.Build(topo.Config{
		Seed:             *seed,
		Scale:            0.0005,
		WindowWidth:      10,
		MaxDevicesPerISP: 300,
		OnlyISPs:         []int{12},
	})
	if err != nil {
		return err
	}
	isp := dep.ISPs[0]
	drv := xmap.NewSimDriver(dep.Engine, dep.Edge)

	// Step 1: the measurement sweep (hop limit 32, then 32+2 to confirm).
	det := loopscan.NewDetector(drv)
	res, err := det.ScanWindows([]ipv6.Window{isp.Window}, []byte(fmt.Sprintf("loop-example-%d", *seed)))
	if err != nil {
		return err
	}
	vuln := res.VulnerableHops()
	fmt.Printf("swept %d sub-prefixes: %d responses, %d loop-vulnerable last hops\n",
		res.Targets, res.Responses, len(vuln))

	// Step 2: amplification on one victim. A single spoofable packet
	// with hop limit 255 ping-pongs on the subscriber link until the
	// hop limit dies: the paper's >200x amplifier.
	var victim *topo.Device
	for _, d := range isp.Devices {
		if d.VulnLAN {
			victim = d
			break
		}
	}
	if victim == nil {
		return fmt.Errorf("no vulnerable device generated")
	}
	notUsed := ipv6.SLAAC(pickNotUsed(victim), 0xbad0_cafe_0001)
	amp, err := loopscan.MeasureAmplification(drv, notUsed, victim.AccessLink)
	if err != nil {
		return err
	}
	fmt.Printf("\none attack packet to %s:\n", notUsed)
	fmt.Printf("  access link carried %d packets (%d bytes) -> amplification factor %.0fx\n",
		amp.LinkPackets, amp.LinkBytes, amp.Factor)

	// Step 3: a short flood to show the link-saturation effect.
	atk, err := loopscan.Attack(drv, []ipv6.Addr{notUsed}, 50, victim.AccessLink)
	if err != nil {
		return err
	}
	fmt.Printf("  50-packet flood moved %d packets on the victim link (%.0fx)\n",
		atk.LinkPackets, atk.Factor)

	// Step 4: the Table XII lab — every modelled router, latest
	// firmware, loop-tested on WAN and LAN prefixes.
	lab, err := topo.BuildLab(*seed)
	if err != nil {
		return err
	}
	labDrv := xmap.NewSimDriver(lab.Engine, lab.Edge)
	t := report.Table{
		Title:   "\nLab routers (Table XII shape, named models)",
		Headers: []string{"Brand", "Model", "WAN", "LAN", "LoopTimes"},
	}
	vulnCount := 0
	for _, e := range lab.Entries {
		wan, err := loopscan.MeasureAmplification(labDrv, ipv6.SLAAC(e.WANPrefix, 0x1), e.AccessLink)
		if err != nil {
			return err
		}
		lanSub, err := e.Delegated.Sub(64, maxSub64(e.Delegated))
		if err != nil {
			return err
		}
		lan, err := loopscan.MeasureAmplification(labDrv, ipv6.SLAAC(lanSub, 0x2), e.AccessLink)
		if err != nil {
			return err
		}
		if wan.LinkPackets > 4 || lan.LinkPackets > 4 {
			vulnCount++
		}
		if e.Router.Firmware != "latest-2020-12" { // the named Table XII rows
			t.AddRow(e.Router.Brand, e.Router.Model,
				mark(wan.LinkPackets > 4), mark(lan.LinkPackets > 4),
				fmt.Sprintf("%d", wan.LinkPackets))
		}
	}
	fmt.Print(t.String())
	fmt.Printf("%d of %d lab routers vulnerable (the paper: all 99)\n", vulnCount, len(lab.Entries))
	return nil
}

func mark(v bool) string {
	if v {
		return "vulnerable"
	}
	return "immune"
}

// pickNotUsed returns a delegated /64 that is neither the WAN /64 nor an
// in-use subnet — the attack surface of Figure 4.
func pickNotUsed(d *topo.Device) ipv6.Prefix {
	deleg := d.CPE.Delegated()
	n, _ := deleg.NumSub(64)
	for i := n.Sub64(1); ; i = i.Sub64(1) {
		sub, err := deleg.Sub(64, i)
		if err != nil {
			continue
		}
		if !sub.Contains(d.WANAddr) {
			return sub
		}
	}
}

func maxSub64(p ipv6.Prefix) uint128.Uint128 {
	n, _ := p.NumSub(64)
	return n.Sub64(1)
}
