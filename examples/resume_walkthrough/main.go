// Resume walkthrough: the crash-safety path of the scan reliability
// layer, end to end. A sharded scan writes periodic checkpoints, is
// "killed" mid-cycle (context cancellation — the SIGINT path of
// cmd/xmap), and a second scan resumes from the checkpoint file. The
// walkthrough then verifies the crash cost: the union of both legs'
// responders equals an uninterrupted reference scan, no responder is
// reported twice, and the probes re-sent because of the crash are
// bounded by one checkpoint interval per shard.
//
// A week-long Internet scan (the paper probes 63M /64 prefixes per
// ISP at 50 kpps) cannot afford to restart from probe zero; this is the
// machinery that makes a mid-scan crash cost seconds, not days.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"

	"repro/internal/ipv6"
	"repro/internal/topo"
	"repro/internal/xmap"
)

var seed = flag.Int64("seed", 7, "simulation seed (same seed, same output)")

const (
	shards          = 2
	checkpointEvery = 256
	killAfter       = 900 // targets per shard before the simulated crash
)

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "resume_walkthrough:", err)
		os.Exit(1)
	}
}

func buildDeployment() (*topo.Deployment, ipv6.Window, error) {
	dep, err := topo.Build(topo.Config{
		Seed: *seed, Scale: 0.0005, WindowWidth: 12, MaxDevicesPerISP: 2000,
	})
	if err != nil {
		return nil, ipv6.Window{}, err
	}
	return dep, dep.ISPs[0].Window, nil
}

func run() error {
	ckptPath := filepath.Join(os.TempDir(), fmt.Sprintf("resume-walkthrough-%d.ckpt", *seed))
	defer os.Remove(ckptPath)

	// Reference: the same scan, uninterrupted, on an identical world.
	dep, window, err := buildDeployment()
	if err != nil {
		return err
	}
	cfg := xmap.Config{Window: window, Seed: []byte("walkthrough"), DedupExact: true}
	refSet := map[ipv6.Addr]bool{}
	refStats, err := xmap.ScanParallel(context.Background(), cfg, xmap.NewSimDriver(dep.Engine, dep.Edge),
		shards, func(r xmap.Response) { refSet[r.Responder] = true })
	if err != nil {
		return err
	}
	fmt.Printf("reference scan:  %5d probes, %4d responders\n", refStats.Sent, refStats.Unique)

	// Leg 1: fresh identical world, checkpoint to disk, crash mid-scan.
	// The cancellation fires from a checkpoint callback, so the "kill"
	// lands between batches exactly like a signal would.
	dep, window, err = buildDeployment()
	if err != nil {
		return err
	}
	drv := xmap.NewSimDriver(dep.Engine, dep.Edge)
	ctx, cancel := context.WithCancel(context.Background())
	var crashed atomic.Bool
	killCfg := cfg
	killCfg.CheckpointPath = ckptPath
	killCfg.CheckpointEvery = checkpointEvery
	killCfg.OnCheckpoint = func(st xmap.ShardState) {
		if st.Stats.Targets >= killAfter && !crashed.Swap(true) {
			cancel()
		}
	}
	seen := map[ipv6.Addr]int{}
	leg1, err := xmap.ScanParallel(ctx, killCfg, drv, shards, func(r xmap.Response) { seen[r.Responder]++ })
	if err != nil && !errors.Is(err, context.Canceled) {
		return err
	}
	fmt.Printf("crashed leg:     %5d probes, %4d responders, checkpoint %s\n",
		leg1.Sent, leg1.Unique, ckptPath)

	// Leg 2: a new process (modelled by a fresh ScanParallel call) loads
	// the checkpoint and finishes the window on the still-running world.
	ck, err := xmap.LoadCheckpoint(ckptPath)
	if err != nil {
		return err
	}
	resumeCfg := cfg
	resumeCfg.CheckpointPath = ckptPath
	resumeCfg.ResumeFrom = ck
	leg2, err := xmap.ScanParallel(context.Background(), resumeCfg, drv, shards,
		func(r xmap.Response) { seen[r.Responder]++ })
	if err != nil {
		return err
	}
	fmt.Printf("resumed leg:     %5d probes cumulative, %4d responders cumulative\n",
		leg2.Sent, leg2.Unique)

	// The crash-cost audit.
	var missing, invented, repeated int
	for a := range refSet {
		if seen[a] == 0 {
			missing++
		}
	}
	for a, n := range seen {
		if !refSet[a] {
			invented++
		}
		if n > 1 {
			repeated++
		}
	}
	var ckptSent uint64
	for _, st := range ck.States {
		ckptSent += st.Stats.Sent
	}
	resent := int64(leg1.Sent-ckptSent) + int64(leg2.Sent) - int64(refStats.Sent)
	fmt.Printf("crash cost:      %d probes re-sent (bound: %d = %d shards x one checkpoint interval)\n",
		resent, shards*checkpointEvery, shards)
	fmt.Printf("consistency:     %d missing, %d invented, %d double-reported\n", missing, invented, repeated)
	if missing > 0 || invented > 0 || repeated > 0 || resent > shards*checkpointEvery {
		return fmt.Errorf("kill-and-resume diverged from the uninterrupted scan")
	}
	fmt.Println("resumed scan is equivalent to the uninterrupted scan")
	return nil
}
