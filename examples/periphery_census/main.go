// Periphery census: the Section IV measurement on a multi-ISP
// deployment — subnet-boundary inference first, then the window scan,
// then the Table II/III-style census of who answered and how their
// addresses are formed.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/ipv6"
	"repro/internal/report"
	"repro/internal/subnet"
	"repro/internal/topo"
	"repro/internal/xmap"
)

var seed = flag.Int64("seed", 11, "simulation seed (same seed, same output)")

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "periphery_census:", err)
		os.Exit(1)
	}
}

func run() error {
	// Three contrasting ISPs: an Indian /64-boundary mobile carrier, a
	// US /56 broadband provider, and a Chinese /60 broadband provider.
	dep, err := topo.Build(topo.Config{
		Seed:             *seed,
		Scale:            0.001,
		WindowWidth:      10,
		MaxDevicesPerISP: 200,
		OnlyISPs:         []int{3, 5, 13},
	})
	if err != nil {
		return err
	}
	drv := xmap.NewSimDriver(dep.Engine, dep.Edge)

	// Step 1 (Section IV-A): infer each block's delegation boundary by
	// bit-flipping around a discovered periphery.
	fmt.Println("== Subnet boundary inference ==")
	for _, isp := range dep.ISPs {
		res, err := subnet.Infer(drv, isp.Window.Base, subnet.Options{Seed: *seed, MaxPreliminary: 8192})
		if err != nil {
			fmt.Printf("  %-16s inference failed: %v\n", isp.Spec.Name, err)
			continue
		}
		fmt.Printf("  %-16s inferred /%d (paper says /%d; samples %v)\n",
			isp.Spec.Name, res.Length, isp.Spec.DelegLen, res.Samples)
	}

	// Step 2 (Section IV-E): scan every window and enrich the results.
	var recs []*analysis.PeripheryRecord
	for _, isp := range dep.ISPs {
		scanner, err := xmap.New(xmap.Config{
			Window:     isp.Window,
			Seed:       []byte(fmt.Sprintf("census-%d", *seed)),
			DedupExact: true,
		}, drv)
		if err != nil {
			return err
		}
		index := isp.Spec.Index
		if _, err := scanner.Run(context.Background(), func(r xmap.Response) {
			recs = append(recs, analysis.Enrich(r, dep.OUI, index))
		}); err != nil {
			return err
		}
	}

	// Step 3: the census tables.
	fmt.Println("\n== Discovery census (Table II shape) ==")
	t := report.Table{Headers: []string{"P", "ISP", "LastHops", "%same", "%diff", "EUI-64 %"}}
	for _, row := range analysis.BuildTableII(recs) {
		name := ""
		for _, isp := range dep.ISPs {
			if isp.Spec.Index == row.ISPIndex {
				name = isp.Spec.Name
			}
		}
		t.AddRow(fmt.Sprintf("%d", row.ISPIndex), name, report.Count(row.UniqueHops),
			report.Pct(row.SamePct), report.Pct(row.DiffPct), report.Pct(row.EUI64Pct))
	}
	fmt.Print(t.String())

	fmt.Println("\n== IID mix (Table III shape) ==")
	dist := analysis.BuildTableIII(recs)
	it := report.Table{Headers: []string{"Class", "Count", "%"}}
	for _, c := range []ipv6.IIDClass{ipv6.IIDEUI64, ipv6.IIDLowByte, ipv6.IIDEmbedIPv4, ipv6.IIDBytePattern, ipv6.IIDRandomized} {
		it.AddRow(c.String(), report.Count(dist.Counts[c]), report.Pct(dist.Pct(c)))
	}
	fmt.Print(it.String())

	// Step 4: hardware attribution through embedded MAC addresses.
	fmt.Println("\n== EUI-64 vendor attribution ==")
	shown := 0
	for _, rec := range recs {
		if rec.VendorHW == "" || shown >= 8 {
			continue
		}
		fmt.Printf("  %-40s MAC %s -> %s\n", rec.Addr, rec.MAC, rec.VendorHW)
		shown++
	}
	return nil
}
