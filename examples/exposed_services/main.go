// Exposed services: the Section V study — discover peripheries, probe
// the eight Table VI services on each, and report the open resolvers,
// reachable management pages and lagging software versions with their
// CVE exposure.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/registry"
	"repro/internal/report"
	"repro/internal/services"
	"repro/internal/topo"
	"repro/internal/xmap"
	"repro/internal/zgrab"
)

var seed = flag.Int64("seed", 13, "simulation seed (same seed, same output)")

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "exposed_services:", err)
		os.Exit(1)
	}
}

func run() error {
	// China Unicom broadband: the second-most-exposed ISP in Table VII
	// (24.6% of peripheries answer at least one service).
	dep, err := topo.Build(topo.Config{
		Seed:             *seed,
		Scale:            0.001,
		WindowWidth:      11,
		MaxDevicesPerISP: 400,
		OnlyISPs:         []int{12},
	})
	if err != nil {
		return err
	}
	isp := dep.ISPs[0]
	drv := xmap.NewSimDriver(dep.Engine, dep.Edge)

	// Discovery scan.
	scanner, err := xmap.New(xmap.Config{
		Window: isp.Window, Seed: []byte(fmt.Sprintf("svc-%d", *seed)), DedupExact: true,
	}, drv)
	if err != nil {
		return err
	}
	var recs []*analysis.PeripheryRecord
	if _, err := scanner.Run(context.Background(), func(r xmap.Response) {
		recs = append(recs, analysis.Enrich(r, dep.OUI, isp.Spec.Index))
	}); err != nil {
		return err
	}
	counts := scanner.ResponderCounts()
	fmt.Printf("discovered %d last hops in %s\n", len(recs), isp.Window)

	// Application-layer probing, one service at a time per target, as
	// the paper's ethics section requires.
	prober := zgrab.New(drv)
	var peripheries []*analysis.PeripheryRecord
	for _, rec := range recs {
		if counts[rec.Addr] >= 4 {
			continue // provider infrastructure, not a periphery
		}
		grab, err := prober.ProbeDevice(rec.Addr, nil)
		if err != nil {
			return err
		}
		rec.AttachGrab(grab)
		peripheries = append(peripheries, rec)
	}

	rows := analysis.BuildTableVII(peripheries)
	t := report.Table{
		Title:   "Exposure census",
		Headers: []string{"Service", "Alive", "%"},
	}
	for _, row := range rows {
		for _, svc := range services.All {
			t.AddRow(svc.String(), report.Count(row.Alive[svc]), report.Pct(row.Pct(svc)))
		}
		t.AddRow("Total", report.Count(row.Total), report.Pct(row.TotalPct()))
	}
	fmt.Print(t.String())

	// The open-resolver story: DNS forwarders answering arbitrary
	// Internet clients, mostly running years-old dnsmasq.
	fmt.Println("\nOpen DNS resolvers (abusable for DDoS reflection, cache snooping):")
	for _, rec := range peripheries {
		res, ok := rec.Grab.Results[services.SvcDNS]
		if !ok || !res.Alive {
			continue
		}
		fmt.Printf("  %-40s %s (%d known CVEs)\n", rec.Addr, res.Software, registry.CVECount(res.Software))
	}

	// Management pages reachable from the whole IPv6 Internet.
	loginPages := 0
	for _, rec := range peripheries {
		if res, ok := rec.Grab.Results[services.SvcHTTP80]; ok && res.LoginPage {
			loginPages++
		}
	}
	fmt.Printf("\nweb management login pages reachable from the Internet: %d\n", loginPages)

	// Software-version census with CVE annotations.
	fmt.Println("\nSoftware census (Table VIII shape):")
	sw := analysis.BuildTableVIII(peripheries)
	st := report.Table{Headers: []string{"Service", "Software", "Devices", "CVEs"}}
	for _, svc := range services.All {
		for _, sc := range sw[svc] {
			st.AddRow(svc.String(), sc.Software, report.Count(sc.Count), fmt.Sprintf("%d", sc.CVEs))
		}
	}
	fmt.Print(st.String())
	return nil
}
