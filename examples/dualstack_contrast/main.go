// Dual-stack contrast: the paper's Section II motivation, demonstrated.
// The same subscribers are modelled twice: behind IPv4 NAT (one public
// address, everything else hidden, services unreachable) and with IPv6
// global addressing (a delegated prefix per home, the periphery
// discoverable with one probe, its services reachable by anyone).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/ipv6"
	"repro/internal/netsim"
	"repro/internal/services"
	"repro/internal/topo"
	"repro/internal/wire"
	"repro/internal/xmap"
	"repro/internal/zgrab"
)

const homes = 8

var seed = flag.Int64("seed", 3, "simulation seed (same seed, same output)")

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dualstack_contrast:", err)
		os.Exit(1)
	}
}

func run() error {
	if err := scanIPv4World(); err != nil {
		return err
	}
	return scanIPv6World()
}

// scanIPv4World: brute-force the provider /24 (feasible: 256 probes for
// the whole space) and try the services.
func scanIPv4World() error {
	eng := netsim.New(3)
	scanV4 := wire.IPv4AddrFrom(198, 51, 100, 7)
	edge := netsim.NewEdge("scanner4", ipv6.V4Mapped(uint32(scanV4)))
	isp := netsim.NewV4Router("isp4")
	up := isp.AddIface4(wire.IPv4AddrFrom(198, 51, 100, 1), "isp:up")
	eng.Connect(edge.Iface(), up, 0)
	isp.AddRoute4(scanV4, 32, up)

	for i := 0; i < homes; i++ {
		public := wire.IPv4AddrFrom(203, 0, 113, byte(10+i))
		nat := netsim.NewNATGateway(fmt.Sprintf("home-%d", i), public,
			[]wire.IPv4Addr{wire.IPv4AddrFrom(192, 168, 1, 10)})
		down := isp.AddIface4(wire.IPv4AddrFrom(10, 0, 0, byte(2+i)), "isp:down")
		eng.Connect(down, nat.WAN(), 0)
		isp.AddRoute4(public, 32, down)
	}

	drv := xmap.NewSimDriver(eng, edge)
	w, err := xmap.V4Window(wire.IPv4AddrFrom(203, 0, 113, 0), 24, 32)
	if err != nil {
		return err
	}
	scanner, err := xmap.New(xmap.Config{Window: w, Probe: &xmap.ICMPEcho4Probe{}, Seed: []byte(fmt.Sprintf("v4-%d", *seed))}, drv)
	if err != nil {
		return err
	}
	found := 0
	stats, err := scanner.Run(context.Background(), func(r xmap.Response) {
		if r.Kind == xmap.KindEchoReply {
			found++
		}
	})
	if err != nil {
		return err
	}
	fmt.Printf("IPv4 world: brute-forced the whole /24 in %d probes.\n", stats.Sent)
	fmt.Printf("  visible: %d NAT public addresses. Home networks: invisible.\n", found)
	fmt.Printf("  services behind NAT: unreachable (no mappings; unsolicited inbound dropped).\n\n")
	return nil
}

// scanIPv6World: the same homes with global addressing — one probe per
// delegated prefix exposes the periphery, and its services answer the
// world.
func scanIPv6World() error {
	dep, err := topo.Build(topo.Config{
		Seed: *seed, Scale: 0.0001, WindowWidth: 10,
		MaxDevicesPerISP: homes, OnlyISPs: []int{12},
	})
	if err != nil {
		return err
	}
	isp := dep.ISPs[0]
	drv := xmap.NewSimDriver(dep.Engine, dep.Edge)
	scanner, err := xmap.New(xmap.Config{Window: isp.Window, Seed: []byte(fmt.Sprintf("v6-%d", *seed)), DedupExact: true}, drv)
	if err != nil {
		return err
	}
	var peripheries []ipv6.Addr
	stats, err := scanner.Run(context.Background(), func(r xmap.Response) {
		if _, ok := dep.DeviceByWAN(r.Responder); ok {
			peripheries = append(peripheries, r.Responder)
		}
	})
	if err != nil {
		return err
	}
	fmt.Printf("IPv6 world: the same homes hold delegated prefixes inside a space that would\n")
	fmt.Printf("  take 2^64+ probes to brute-force — but one probe per sub-prefix sufficed.\n")
	fmt.Printf("  probes: %d, peripheries exposed: %d of %d homes\n", stats.Sent, len(peripheries), len(isp.Devices))

	prober := zgrab.New(drv)
	reachable := 0
	for _, addr := range peripheries {
		res, err := prober.ProbeDevice(addr, []services.ID{services.SvcDNS, services.SvcHTTP80, services.SvcHTTP8080})
		if err != nil {
			return err
		}
		if res.AliveCount() > 0 {
			reachable++
			for _, svc := range res.Results {
				if svc.Alive {
					fmt.Printf("  %-40s %-10s reachable globally (%s)\n", addr, svc.Service, svc.Software)
				}
			}
		}
	}
	fmt.Printf("  homes with globally reachable services: %d (behind NAT these were invisible)\n", reachable)
	return nil
}
