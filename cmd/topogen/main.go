// Command topogen generates a simulated deployment and prints its
// inventory: ISP blocks, scan windows, device populations, vendor and
// IID mixes, service exposure and loop-vulnerability ground truth. It is
// the inspection tool for the substrate every other command scans.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/ipv6"
	"repro/internal/report"
	"repro/internal/services"
	"repro/internal/topo"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "topogen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		seed   = flag.Int64("seed", 1, "generation seed")
		scale  = flag.Float64("scale", 0.0005, "population scale relative to the paper")
		width  = flag.Int("width", 12, "scan window width in bits")
		maxDev = flag.Int("max-devices", 4000, "cap on devices per ISP")
		full   = flag.Bool("devices", false, "also dump every device")
	)
	flag.Parse()

	dep, err := topo.Build(topo.Config{
		Seed: *seed, Scale: *scale, WindowWidth: *width, MaxDevicesPerISP: *maxDev,
	})
	if err != nil {
		return err
	}

	t := report.Table{
		Title: "Generated deployment",
		Headers: []string{"P", "ISP", "Cty", "Net", "Block", "Window",
			"Devices", "UE", "EUI-64", "Loop", "Svc"},
	}
	for _, isp := range dep.ISPs {
		var ue, eui, loop, svc int
		for _, d := range isp.Devices {
			if d.IsUE {
				ue++
			}
			if d.Class == ipv6.IIDEUI64 {
				eui++
			}
			if d.Vulnerable() {
				loop++
			}
			if len(d.Services) > 0 {
				svc++
			}
		}
		t.AddRow(
			fmt.Sprintf("%d", isp.Spec.Index), isp.Spec.Name, isp.Spec.Country,
			isp.Spec.Network.String(), isp.Block.String(), isp.Window.String(),
			report.Count(len(isp.Devices)), report.Count(ue),
			report.Count(eui), report.Count(loop), report.Count(svc),
		)
	}
	fmt.Print(t.String())

	// Vendor census across the deployment.
	vendors := map[string]int{}
	for _, d := range dep.Devices() {
		vendors[d.Vendor]++
	}
	names := make([]string, 0, len(vendors))
	for v := range vendors {
		names = append(names, v)
	}
	sort.Slice(names, func(i, j int) bool {
		if vendors[names[i]] != vendors[names[j]] {
			return vendors[names[i]] > vendors[names[j]]
		}
		return names[i] < names[j]
	})
	vt := report.Table{Title: "\nVendor mix", Headers: []string{"Vendor", "Devices"}}
	for _, v := range names {
		vt.AddRow(v, report.Count(vendors[v]))
	}
	fmt.Print(vt.String())

	if *full {
		dt := report.Table{
			Title:   "\nDevices",
			Headers: []string{"ISP", "WAN address", "Vendor", "IID", "Loop", "Services"},
		}
		for _, d := range dep.Devices() {
			loop := ""
			if d.VulnWAN {
				loop += "W"
			}
			if d.VulnLAN {
				loop += "L"
			}
			var svcs string
			for _, svc := range services.All {
				if _, ok := d.Services[svc]; ok {
					if svcs != "" {
						svcs += ","
					}
					svcs += svc.String()
				}
			}
			dt.AddRow(fmt.Sprintf("%d", d.Spec.Index), d.WANAddr.String(),
				d.Vendor, d.Class.String(), loop, svcs)
		}
		fmt.Print(dt.String())
	}
	return nil
}
