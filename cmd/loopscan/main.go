// Command loopscan reproduces the Section VI routing-loop measurement:
// sweep one ISP window (or the whole BGP universe) with the h / h+2
// hop-limit method and report the vulnerable population.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/analysis"
	"repro/internal/ipv6"
	"repro/internal/loopscan"
	"repro/internal/report"
	"repro/internal/telemetry"
	"repro/internal/topo"
	"repro/internal/xmap"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "loopscan:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		mode     = flag.String("mode", "isp", "isp: sweep one ISP window; bgp: sweep advertised prefixes")
		ispIndex = flag.Int("isp", 12, "ISP index for -mode isp")
		seed     = flag.Int64("seed", 1, "deployment seed")
		scale    = flag.Float64("scale", 0.0005, "population scale (isp mode)")
		width    = flag.Int("width", 12, "window width in bits (isp mode)")
		maxDev   = flag.Int("max-devices", 2000, "device cap per ISP (isp mode)")
		bgpASes  = flag.Int("ases", 200, "AS count (bgp mode)")
		hopLimit = flag.Int("hop-limit", loopscan.DefaultHopLimit, "probe hop limit h")
		statusF  = flag.String("status-json", "", "write the sweep's telemetry snapshot as JSON to this file ('-' for stderr)")
	)
	flag.Parse()

	switch *mode {
	case "isp":
		return runISP(*ispIndex, *seed, *scale, *width, *maxDev, uint8(*hopLimit), *statusF)
	case "bgp":
		return runBGP(*seed, *bgpASes, uint8(*hopLimit), *statusF)
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
}

// attachTelemetry gives the detector a registry when -status-json asks
// for one; writeStatus emits the snapshot afterwards.
func attachTelemetry(det *loopscan.Detector, drv *xmap.SimDriver, statusF string) *telemetry.Registry {
	if statusF == "" {
		return nil
	}
	reg := telemetry.New(telemetry.Options{Shards: 1})
	drv.RegisterTelemetry(reg)
	det.Tel = reg.Shard(0)
	return reg
}

func writeStatus(reg *telemetry.Registry, statusF string) error {
	if reg == nil {
		return nil
	}
	if statusF == "-" {
		return reg.WriteJSON(os.Stderr)
	}
	fh, err := os.Create(statusF)
	if err != nil {
		return err
	}
	if err := reg.WriteJSON(io.Writer(fh)); err != nil {
		fh.Close()
		return err
	}
	return fh.Close()
}

func runISP(ispIndex int, seed int64, scale float64, width, maxDev int, h uint8, statusF string) error {
	dep, err := topo.Build(topo.Config{
		Seed: seed, Scale: scale, WindowWidth: width,
		MaxDevicesPerISP: maxDev, OnlyISPs: []int{ispIndex},
	})
	if err != nil {
		return err
	}
	isp := dep.ISPs[0]
	drv := xmap.NewSimDriver(dep.Engine, dep.Edge)
	det := loopscan.NewDetector(drv)
	det.HopLimit = h
	reg := attachTelemetry(det, drv, statusF)
	res, err := det.ScanWindows([]ipv6.Window{isp.Window}, []byte(fmt.Sprintf("cli-%d", seed)))
	if err != nil {
		return err
	}
	if err := writeStatus(reg, statusF); err != nil {
		return err
	}
	vuln := res.VulnerableHops()
	sort.Slice(vuln, func(i, j int) bool { return vuln[i].Addr.Less(vuln[j].Addr) })

	fmt.Printf("ISP %d (%s), window %s: %d targets, %d responses, %d loop-vulnerable last hops\n",
		isp.Spec.Index, isp.Spec.Name, isp.Window, res.Targets, res.Responses, len(vuln))
	var same, diff int
	t := report.Table{Headers: []string{"Last hop", "IID class", "same", "diff"}}
	for _, hop := range vuln {
		same += hop.SameCount
		diff += hop.DiffCount
		t.AddRow(hop.Addr.String(), ipv6.Classify(hop.Addr).String(),
			fmt.Sprintf("%d", hop.SameCount), fmt.Sprintf("%d", hop.DiffCount))
	}
	fmt.Print(t.String())
	if same+diff > 0 {
		fmt.Printf("loop replies: %.1f%% same /64, %.1f%% diff\n",
			100*float64(same)/float64(same+diff), 100*float64(diff)/float64(same+diff))
	}
	return nil
}

func runBGP(seed int64, ases int, h uint8, statusF string) error {
	dep, err := topo.BuildBGPUniverse(topo.BGPConfig{Seed: seed, NumASes: ases})
	if err != nil {
		return err
	}
	drv := xmap.NewSimDriver(dep.Engine, dep.Edge)
	det := loopscan.NewDetector(drv)
	det.HopLimit = h
	reg := attachTelemetry(det, drv, statusF)
	res, err := det.ScanWindows(dep.Windows, []byte(fmt.Sprintf("cli-bgp-%d", seed)))
	if err != nil {
		return err
	}
	if err := writeStatus(reg, statusF); err != nil {
		return err
	}
	summary := analysis.BuildTableIX(res, dep.Geo)
	t := report.Table{
		Title:   "BGP-universe loop sweep",
		Headers: []string{"Last Hops", "# unique", "# ASN", "# Country"},
	}
	t.AddRow("Total", report.Count(summary.TotalHops), report.Count(summary.TotalASNs), report.Count(summary.TotalCountry))
	t.AddRow("with Routing Loop", report.Count(summary.LoopHops), report.Count(summary.LoopASNs), report.Count(summary.LoopCountries))
	fmt.Print(t.String())

	fig := analysis.BuildFigure5(res, dep.Geo, 10)
	labels := make([]string, 0, len(fig.TopCountries))
	values := make([]int, 0, len(fig.TopCountries))
	for _, r := range fig.TopCountries {
		labels = append(labels, r.Label)
		values = append(values, r.Count)
	}
	fmt.Print((report.Bars{Title: "\nTop loop countries", Width: 30}).Render(labels, values))
	return nil
}
