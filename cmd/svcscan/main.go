// Command svcscan reproduces the Section V measurement on one ISP:
// discover peripheries with the scanner, probe the eight Table VI
// services on each, and print the exposure and software-version census.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/report"
	"repro/internal/services"
	"repro/internal/topo"
	"repro/internal/xmap"
	"repro/internal/zgrab"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "svcscan:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		ispIndex = flag.Int("isp", 13, "Table I ISP index to scan (1-15)")
		seed     = flag.Int64("seed", 1, "deployment seed")
		scale    = flag.Float64("scale", 0.0005, "population scale")
		width    = flag.Int("width", 12, "window width in bits")
		maxDev   = flag.Int("max-devices", 2000, "cap on devices per ISP")
	)
	flag.Parse()

	dep, err := topo.Build(topo.Config{
		Seed: *seed, Scale: *scale, WindowWidth: *width,
		MaxDevicesPerISP: *maxDev, OnlyISPs: []int{*ispIndex},
	})
	if err != nil {
		return err
	}
	isp := dep.ISPs[0]
	drv := xmap.NewSimDriver(dep.Engine, dep.Edge)

	scanner, err := xmap.New(xmap.Config{
		Window:     isp.Window,
		Seed:       []byte(fmt.Sprintf("svcscan-%d", *seed)),
		DedupExact: true,
	}, drv)
	if err != nil {
		return err
	}
	var recs []*analysis.PeripheryRecord
	if _, err := scanner.Run(context.Background(), func(r xmap.Response) {
		recs = append(recs, analysis.Enrich(r, dep.OUI, isp.Spec.Index))
	}); err != nil {
		return err
	}
	counts := scanner.ResponderCounts()

	prober := zgrab.New(drv)
	var peripheries []*analysis.PeripheryRecord
	for _, rec := range recs {
		if counts[rec.Addr] >= 4 {
			continue // infrastructure
		}
		grab, err := prober.ProbeDevice(rec.Addr, nil)
		if err != nil {
			return err
		}
		rec.AttachGrab(grab)
		peripheries = append(peripheries, rec)
	}

	rows := analysis.BuildTableVII(peripheries)
	t := report.Table{
		Title:   fmt.Sprintf("Service exposure for ISP %d (%s)", isp.Spec.Index, isp.Spec.Name),
		Headers: []string{"Service", "Alive", "% of peripheries"},
	}
	for _, row := range rows {
		for _, svc := range services.All {
			t.AddRow(svc.String(), report.Count(row.Alive[svc]), report.Pct(row.Pct(svc)))
		}
		t.AddRow("Total (>=1)", report.Count(row.Total), report.Pct(row.TotalPct()))
	}
	fmt.Print(t.String())

	sw := analysis.BuildTableVIII(peripheries)
	st := report.Table{
		Title:   "\nSoftware census",
		Headers: []string{"Service", "Software", "Devices", "CVEs"},
	}
	for _, svc := range services.All {
		for _, sc := range sw[svc] {
			st.AddRow(svc.String(), sc.Software, report.Count(sc.Count), fmt.Sprintf("%d", sc.CVEs))
		}
	}
	fmt.Print(st.String())
	return nil
}
