// Command xmap runs the fast IPv6 periphery scanner against a simulated
// deployment — the CLI counterpart of the paper's released tool, with the
// Internet replaced by the repository's packet-level simulator (a raw
// socket driver would slot in behind the same xmap.Driver interface).
//
// Usage:
//
//	xmap -isp 13 -width 12 -scale 0.001 [-probe icmp|tcp:80|dns|ntp]
//	     [-shards 4 -shard 1] [-output csv|json] [-rate 100000]
//	xmap -window 2401::/48-64 ...   (scan an explicit window)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/ipv6"
	"repro/internal/netsim"
	"repro/internal/telemetry"
	"repro/internal/topo"
	"repro/internal/wire"
	"repro/internal/xmap"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "xmap:", err)
		os.Exit(1)
	}
}

// run executes one CLI invocation. Flags live on a private FlagSet and
// all output goes through the writer arguments, so tests drive the
// command end to end without process-global state.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("xmap", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		ispIndex = fs.Int("isp", 13, "Table I ISP index to scan (1-15)")
		windowF  = fs.String("window", "", "explicit scan window (addr/from-to); overrides -isp's default window")
		v4F      = fs.String("v4window", "", `IPv4 scan window ("192.168.0.0/20-25"); implies the icmp4 probe`)
		width    = fs.Int("width", 12, "window width in bits for the generated deployment")
		scale    = fs.Float64("scale", 0.0005, "population scale relative to the paper")
		maxDev   = fs.Int("max-devices", 2000, "cap on devices per ISP")
		probeF   = fs.String("probe", "icmp", "probe module: icmp, tcp:<port>, dns, ntp")
		seed     = fs.Int64("seed", 1, "deployment and scan seed")
		shards   = fs.Int("shards", 1, "total shards")
		shard    = fs.Int("shard", 0, "this instance's shard index")
		rate     = fs.Int("rate", 0, "probe rate limit in pps (0 = unlimited)")
		batchN   = fs.Int("batch", 0, "probes per send burst / receive drain window (0 = default 64; 1 = per-probe sends)")
		probesN  = fs.Int("probes", 1, "probes per target (ZMap -P)")
		blockF   = fs.String("blocklist", "", "blocklist file (one prefix per line, # comments)")
		outputF  = fs.String("output", "csv", "output module: csv or json")
		filterF  = fs.String("filter", "", `output filter expression, e.g. 'kind == "dest-unreach" && !same_prefix64'`)
		maxTgt   = fs.Uint64("max-targets", 0, "stop after this many probes (0 = all)")
		quiet    = fs.Bool("quiet", false, "suppress the summary on stderr")
		metaF    = fs.String("metadata", "", "write JSON scan metadata to this file ('-' for stderr)")
		parallel = fs.Int("parallel", 1, "run this many shard scanners concurrently in this process")
		ringSize = fs.Int("ring", 0, "per-shard SPSC transmission ring capacity under -parallel (0 = direct sends)")
		retries  = fs.Int("retries", 0, "re-probe unanswered targets up to this many times with backoff")
		defend   = fs.Bool("defend", false, "adversarial defenses: alias/cooldown detection, strict reply validation, overload shedding")
		aimd     = fs.Bool("aimd", false, "adapt the send window to the reply rate (AIMD)")
		ckptF    = fs.String("checkpoint", "", "write a resumable scan checkpoint to this file (periodically, on SIGINT/SIGTERM, and on exit)")
		ckptN    = fs.Uint64("checkpoint-every", 4096, "targets between periodic checkpoints")
		resumeF  = fs.Bool("resume", false, "resume the scan recorded in the -checkpoint file")
		monitorN = fs.Int("monitor-every", 0, "print a ZMap-style status line to stderr every N probed targets (0 = off)")
		fastF    = fs.Bool("fastpath", true, "compiled forwarding fast path in the simulated network (disable to A/B the interpreted engine)")
		statusF  = fs.String("status-json", "", "write the merged telemetry snapshot as JSON to this file ('-' for stderr)")
		listenF  = fs.String("listen", "", "serve /telemetry, /trace, expvar and pprof over HTTP on this address for the scan's duration")
		traceF   = fs.String("trace", "", "write the flight-recorder dump as JSON to this file ('-' for stderr)")
		sampleF  = fs.Int("trace-sample", -1, "trace 1/2^k of targets through the full probe lifecycle (0 = every target, -1 = off)")
		traceOut = fs.String("trace-out", "", "write the probe-lifecycle trace to this file ('-' for stderr); a .json suffix selects Chrome-trace/Perfetto format, anything else NDJSON")
		watchF   = fs.Bool("watchdog", false, "watch per-shard progress and print a structured stall diagnosis to stderr when a shard wedges")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	// IPv4 mode scans a small simulated NAT deployment instead of the
	// Table I ISPs.
	if *v4F != "" {
		if *probeF == "icmp" {
			*probeF = "icmp4"
		}
		return runV4(*v4F, *probeF, *seed, *shards, *shard, *rate, *maxTgt, *outputF, *filterF, *metaF, *quiet, stdout, stderr)
	}

	dep, err := topo.Build(topo.Config{
		Seed: *seed, Scale: *scale, WindowWidth: *width, MaxDevicesPerISP: *maxDev,
		FastPath: fastF,
	})
	if err != nil {
		return err
	}

	var window ipv6.Window
	if *windowF != "" {
		window, err = ipv6.ParseWindow(*windowF)
		if err != nil {
			return err
		}
	} else {
		found := false
		for _, isp := range dep.ISPs {
			if isp.Spec.Index == *ispIndex {
				window, found = isp.Window, true
				break
			}
		}
		if !found {
			return fmt.Errorf("unknown ISP index %d", *ispIndex)
		}
	}

	probe, err := parseProbe(*probeF)
	if err != nil {
		return err
	}

	var out xmap.OutputModule
	switch *outputF {
	case "csv":
		out, err = xmap.NewCSVOutput(stdout)
		if err != nil {
			return err
		}
	case "json":
		out = xmap.NewJSONOutput(stdout)
	default:
		return fmt.Errorf("unknown output module %q", *outputF)
	}
	if *filterF != "" {
		out, err = xmap.NewFilteredOutput(*filterF, out)
		if err != nil {
			return err
		}
	}

	var blocklist []ipv6.Prefix
	if *blockF != "" {
		fh, err := os.Open(*blockF)
		if err != nil {
			return err
		}
		blocklist, err = xmap.ParseBlocklist(fh)
		if cerr := fh.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}

	cfg := xmap.Config{
		Window:          window,
		Probe:           probe,
		Seed:            []byte(fmt.Sprintf("xmap-cli-%d", *seed)),
		Shards:          *shards,
		ShardIndex:      *shard,
		Rate:            *rate,
		DrainEvery:      *batchN,
		MaxTargets:      *maxTgt,
		ProbesPerTarget: *probesN,
		Blocklist:       blocklist,
		Retries:         *retries,
		AIMD:            *aimd,
		RingSize:        *ringSize,
		Defend:          *defend,
	}
	drv := xmap.NewSimDriver(dep.Engine, dep.Edge)

	// Probe-lifecycle tracing attaches only when asked for; the sampler
	// is keyed by the scan seed, so the traced target set — and the
	// exported trace — is identical across runs of the same scan.
	var tracer *telemetry.Tracer
	if *sampleF >= 0 || *traceOut != "" {
		shift := *sampleF
		if shift < 0 {
			shift = 10 // -trace-out alone: a 1/1024 default
		}
		scanStreams := *parallel
		if scanStreams < 1 {
			scanStreams = 1
		}
		tracer = telemetry.NewTracer(telemetry.TracerOptions{
			Seed:        cfg.Seed,
			SampleShift: shift,
			ScanStreams: scanStreams,
			SimStreams:  1,
		})
		cfg.Tracer = tracer
		drv.RegisterTracer(tracer)
	}
	if *watchF {
		wdShards := *parallel
		if wdShards < 1 {
			wdShards = 1
		}
		wd := telemetry.NewWatchdog(wdShards, 8, tracer)
		cfg.Watchdog = wd
		wdStop := make(chan struct{})
		defer close(wdStop)
		go func() {
			ticker := time.NewTicker(500 * time.Millisecond)
			defer ticker.Stop()
			tick := uint64(0)
			for {
				select {
				case <-wdStop:
					return
				case <-ticker.C:
					tick++
					for _, d := range wd.Check(tick) {
						fmt.Fprintln(stderr, "xmap:", d)
					}
				}
			}
		}()
	}

	// Telemetry attaches only when an observability flag asks for it; a
	// bare scan keeps the zero-cost detached path.
	var reg *telemetry.Registry
	var mon *telemetry.Monitor
	if *monitorN > 0 || *statusF != "" || *listenF != "" || *traceF != "" {
		regShards := *parallel
		if regShards < 1 {
			regShards = 1
		}
		reg = telemetry.New(telemetry.Options{Shards: regShards})
		drv.RegisterTelemetry(reg)
		reg.AttachTracer(tracer)
		cfg.Telemetry = reg

		// SIGQUIT dumps the flight recorder without stopping the scan —
		// the "what is it doing right now" escape hatch.
		quitCh := make(chan os.Signal, 1)
		signal.Notify(quitCh, syscall.SIGQUIT)
		defer signal.Stop(quitCh)
		go func() {
			for range quitCh {
				fmt.Fprintln(stderr, "xmap: SIGQUIT: flight-recorder dump")
				if derr := reg.DumpTrace(stderr); derr != nil {
					fmt.Fprintln(stderr, "xmap: trace dump:", derr)
				}
			}
		}()
	}
	if *monitorN > 0 {
		mon = telemetry.NewMonitor(reg, stderr, *monitorN)
		if *maxTgt > 0 {
			mon.SetTotal(*maxTgt)
		} else if size, ok := window.Size(); ok && size.Hi == 0 {
			mon.SetTotal(size.Lo)
		}
		cfg.Monitor = mon
	}
	if *listenF != "" {
		srv, addr, lerr := reg.Serve(*listenF)
		if lerr != nil {
			return lerr
		}
		fmt.Fprintf(stderr, "xmap: telemetry on http://%s (telemetry, trace, debug/vars, debug/pprof)\n", addr)
		defer srv.Close()
	}

	// SIGINT/SIGTERM cancel the scan; with -checkpoint set, the exit path
	// writes a final resumable state first.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var writeErr error
	handler := func(r xmap.Response) {
		if werr := out.Write(r); werr != nil && writeErr == nil {
			writeErr = werr
		}
	}

	var (
		stats   xmap.Stats
		scanner *xmap.Scanner
	)
	if *ckptF == "" && !*resumeF && *parallel <= 1 {
		// Distributed single-shard mode: -shards/-shard pick one slice of
		// the permutation, exactly as before.
		scanner, err = xmap.New(cfg, drv)
		if err != nil {
			return err
		}
		stats, err = scanner.Run(ctx, handler)
	} else {
		// Crash-safe and/or multi-shard-in-process mode via ScanParallel.
		if *shards != 1 || *shard != 0 {
			return fmt.Errorf("-shards/-shard cannot combine with -parallel/-checkpoint; use -parallel for local sharding")
		}
		if *resumeF && *ckptF == "" {
			return fmt.Errorf("-resume needs -checkpoint to name the file")
		}
		cfg.CheckpointPath = *ckptF
		if *ckptF != "" {
			cfg.CheckpointEvery = *ckptN
		}
		if *resumeF {
			ck, lerr := xmap.LoadCheckpoint(*ckptF)
			if lerr != nil {
				return fmt.Errorf("loading checkpoint: %w", lerr)
			}
			cfg.ResumeFrom = ck
		}
		stats, err = xmap.ScanParallel(ctx, cfg, drv, *parallel, handler)
	}
	if errors.Is(err, context.Canceled) && *ckptF != "" {
		fmt.Fprintf(stderr, "xmap: interrupted; resumable checkpoint written to %s (resume with -resume)\n", *ckptF)
		err = nil
	}
	if err != nil {
		return err
	}
	if writeErr != nil {
		return writeErr
	}
	if err := out.Flush(); err != nil {
		return err
	}
	mon.Final()
	if *statusF != "" {
		if err := writeSink(*statusF, stderr, reg.WriteJSON); err != nil {
			return fmt.Errorf("writing status JSON: %w", err)
		}
	}
	if *traceF != "" {
		if err := writeSink(*traceF, stderr, reg.DumpTrace); err != nil {
			return fmt.Errorf("writing trace: %w", err)
		}
	}
	if *traceOut != "" {
		write := tracer.WriteNDJSON
		if strings.HasSuffix(*traceOut, ".json") {
			write = tracer.WriteChromeTrace
		}
		if err := writeSink(*traceOut, stderr, write); err != nil {
			return fmt.Errorf("writing probe trace: %w", err)
		}
	}
	if !*quiet {
		fmt.Fprintf(stderr,
			"scanned %s: sent %d, received %d, unique responders %d, hit rate %.4f%%, elapsed %s\n",
			window, stats.Sent, stats.Received, stats.Unique, 100*stats.HitRate(), stats.Elapsed)
		if stats.Retried > 0 || stats.RateDown > 0 {
			fmt.Fprintf(stderr,
				"reliability: retried %d, retry-dropped %d, exhausted %d, abandoned %d, aimd up/down %d/%d\n",
				stats.Retried, stats.RetryDropped, stats.RetryExhausted, stats.RetryAbandoned,
				stats.RateUp, stats.RateDown)
		}
		if stats.AliasDetected > 0 || stats.Quarantined > 0 || stats.Shed > 0 {
			fmt.Fprintf(stderr,
				"defense: aliases detected %d, cooldown probes %d, blocked %d, quarantined %d, shed %d\n",
				stats.AliasDetected, stats.AliasCooldown, stats.AliasBlocked, stats.Quarantined, stats.Shed)
		}
	}
	if *metaF != "" {
		if scanner == nil {
			// ScanParallel path: build an equivalent scanner for metadata.
			scanner, err = xmap.New(cfg, drv)
			if err != nil {
				return err
			}
		}
		md := scanner.BuildMetadata(stats, time.Now())
		if err := writeSink(*metaF, stderr, md.WriteJSON); err != nil {
			return err
		}
	}
	return nil
}

// writeSink runs write against the named file ("-" means fallback,
// normally stderr), creating and closing the file around it.
func writeSink(name string, fallback io.Writer, write func(io.Writer) error) error {
	if name == "-" {
		return write(fallback)
	}
	fh, err := os.Create(name)
	if err != nil {
		return err
	}
	if err := write(fh); err != nil {
		fh.Close()
		return err
	}
	return fh.Close()
}

func parseProbe(s string) (xmap.ProbeModule, error) {
	switch {
	case s == "icmp":
		return &xmap.ICMPEchoProbe{}, nil
	case s == "icmp4":
		return &xmap.ICMPEcho4Probe{}, nil
	case s == "dns":
		return xmap.NewDNSProbe("connectivity.xmap.example"), nil
	case s == "ntp":
		return xmap.NewNTPProbe(), nil
	case strings.HasPrefix(s, "tcp:"):
		port, err := strconv.ParseUint(strings.TrimPrefix(s, "tcp:"), 10, 16)
		if err != nil {
			return nil, fmt.Errorf("bad tcp port in %q", s)
		}
		return &xmap.TCPSynProbe{Port: uint16(port)}, nil
	}
	return nil, fmt.Errorf("unknown probe module %q", s)
}

// runV4 builds a NAT'd IPv4 neighborhood inside the requested window and
// scans it — the Section II contrast, driveable from the CLI.
func runV4(windowSpec, probeF string, seed int64, shards, shard, rate int, maxTgt uint64, outputF, filterF, metaF string, quiet bool, stdout, stderr io.Writer) error {
	window, err := xmap.ParseV4Window(windowSpec)
	if err != nil {
		return err
	}
	probe, err := parseProbe(probeF)
	if err != nil {
		return err
	}

	eng := netsim.New(seed)
	scanV4 := wire.IPv4AddrFrom(198, 51, 100, 7)
	edge := netsim.NewEdge("scanner4", ipv6.V4Mapped(uint32(scanV4)))
	isp := netsim.NewV4Router("isp4")
	up := isp.AddIface4(wire.IPv4AddrFrom(198, 51, 100, 1), "isp:up")
	eng.Connect(edge.Iface(), up, 0)
	isp.AddRoute4(scanV4, 32, up)

	// Populate ~1/16 of the window with NAT homes.
	rng := rand.New(rand.NewSource(seed))
	size, _ := window.Size()
	homes := int(size.Lo / 16)
	if homes < 1 {
		homes = 1
	}
	base, _ := window.Base.Addr().AsV4()
	hostBits := uint(128 - window.To) // bits below the iterated boundary
	for i := 0; i < homes; i++ {
		slot := uint32(rng.Intn(int(size.Lo)))
		public := wire.IPv4Addr(base | slot<<hostBits | uint32(rng.Intn(1<<hostBits)))
		nat := netsim.NewNATGateway(fmt.Sprintf("home-%d", i), public,
			[]wire.IPv4Addr{wire.IPv4AddrFrom(192, 168, 1, 10)})
		down := isp.AddIface4(wire.IPv4AddrFrom(10, 0, byte(i>>8), byte(i)), "isp:down")
		eng.Connect(down, nat.WAN(), 0)
		isp.AddRoute4(public, 32, down)
	}

	var out xmap.OutputModule
	switch outputF {
	case "csv":
		out, err = xmap.NewCSVOutput(stdout)
		if err != nil {
			return err
		}
	case "json":
		out = xmap.NewJSONOutput(stdout)
	default:
		return fmt.Errorf("unknown output module %q", outputF)
	}
	if filterF != "" {
		out, err = xmap.NewFilteredOutput(filterF, out)
		if err != nil {
			return err
		}
	}

	scanner, err := xmap.New(xmap.Config{
		Window: window, Probe: probe,
		Seed:   []byte(fmt.Sprintf("xmap-cli-v4-%d", seed)),
		Shards: shards, ShardIndex: shard,
		Rate: rate, MaxTargets: maxTgt,
	}, xmap.NewSimDriver(eng, edge))
	if err != nil {
		return err
	}
	var writeErr error
	stats, err := scanner.Run(context.Background(), func(r xmap.Response) {
		if werr := out.Write(r); werr != nil && writeErr == nil {
			writeErr = werr
		}
	})
	if err != nil {
		return err
	}
	if writeErr != nil {
		return writeErr
	}
	if err := out.Flush(); err != nil {
		return err
	}
	if !quiet {
		fmt.Fprintf(stderr, "scanned %s: sent %d, unique responders %d\n", windowSpec, stats.Sent, stats.Unique)
	}
	if metaF != "" {
		md := scanner.BuildMetadata(stats, time.Now())
		if err := writeSink(metaF, stderr, md.WriteJSON); err != nil {
			return err
		}
	}
	return nil
}
