package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runOnce drives one full CLI invocation in-process.
func runOnce(t *testing.T, args ...string) (stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	if err := run(args, &out, &errb); err != nil {
		t.Fatalf("run(%v): %v\nstderr:\n%s", args, err, errb.String())
	}
	return out.String(), errb.String()
}

// TestStatusJSONDeterministic: the -status-json artifact of a seeded
// scan is byte-identical across two identical runs — the property that
// makes snapshots diffable in scripts and goldens.
func TestStatusJSONDeterministic(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.json")
	b := filepath.Join(dir, "b.json")
	args := []string{"-max-targets", "20", "-quiet", "-seed", "7", "-status-json"}
	runOnce(t, append(args, a)...)
	runOnce(t, append(args, b)...)
	da, err := os.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	db, err := os.ReadFile(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(da) == 0 {
		t.Fatal("empty status JSON")
	}
	if !bytes.Equal(da, db) {
		t.Errorf("status JSON differs across identical seeded runs:\n%s\nvs\n%s", da, db)
	}

	var snap struct {
		Counters map[string]uint64 `json:"counters"`
		Gauges   map[string]int64  `json:"gauges"`
	}
	if err := json.Unmarshal(da, &snap); err != nil {
		t.Fatal(err)
	}
	if got := snap.Counters["scan.targets"]; got != 20 {
		t.Errorf("scan.targets = %d, want 20", got)
	}
	if got := snap.Counters["scan.sent"]; got != 20 {
		t.Errorf("scan.sent = %d, want 20", got)
	}
	if snap.Counters["sim.transmissions"] == 0 {
		t.Error("sim.transmissions = 0: engine collector not registered")
	}
	if snap.Counters["sim.fastpath.hits"]+snap.Counters["sim.fastpath.misses"] == 0 {
		t.Error("sim.fastpath.* all zero: fast-path counters not collected")
	}
	if snap.Counters["scan.received"] == 0 {
		t.Error("scan.received = 0: the fixture always answers some probes")
	}
	if got := snap.Gauges["scan.window"]; got != 64 {
		t.Errorf("scan.window gauge = %d, want the default drain window 64", got)
	}
	// The adversarial-defense counters are part of the snapshot schema,
	// and an honest deployment must leave every one at zero.
	for _, key := range []string{
		"scan.alias.detected", "scan.alias.cooldown", "scan.alias.blocked",
		"scan.replies.quarantined", "scan.shed",
	} {
		got, ok := snap.Counters[key]
		if !ok {
			t.Errorf("counter %s missing from the status snapshot", key)
		}
		if got != 0 {
			t.Errorf("%s = %d on an honest deployment, want 0", key, got)
		}
	}
}

// TestDefendFlag: -defend wires the adversarial defenses into the scan;
// on the honest generated deployment they must be inert — identical
// results to an undefended run and zero defense counters.
func TestDefendFlag(t *testing.T) {
	dir := t.TempDir()
	plain := filepath.Join(dir, "plain.json")
	defended := filepath.Join(dir, "defended.json")
	args := []string{"-max-targets", "200", "-quiet", "-seed", "7", "-status-json"}
	runOnce(t, append(args, plain)...)
	runOnce(t, append([]string{"-defend"}, append(args, defended)...)...)
	read := func(path string) map[string]uint64 {
		t.Helper()
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var snap struct {
			Counters map[string]uint64 `json:"counters"`
		}
		if err := json.Unmarshal(data, &snap); err != nil {
			t.Fatal(err)
		}
		return snap.Counters
	}
	pc, dc := read(plain), read(defended)
	for _, key := range []string{"scan.targets", "scan.sent", "scan.received", "scan.unique"} {
		if pc[key] != dc[key] {
			t.Errorf("%s = %d defended vs %d undefended; defenses must be inert on honest traffic",
				key, dc[key], pc[key])
		}
	}
	for _, key := range []string{"scan.alias.detected", "scan.alias.blocked", "scan.replies.quarantined", "scan.shed"} {
		if dc[key] != 0 {
			t.Errorf("%s = %d on an honest deployment with -defend, want 0", key, dc[key])
		}
	}
}

// TestMonitorLines: -monitor-every prints periodic status lines plus a
// final "done" line on stderr.
func TestMonitorLines(t *testing.T) {
	_, errOut := runOnce(t, "-max-targets", "200", "-quiet", "-monitor-every", "64")
	lines := strings.Split(strings.TrimSpace(errOut), "\n")
	if len(lines) < 2 {
		t.Fatalf("expected multiple monitor lines, got %q", errOut)
	}
	for _, l := range lines {
		if !strings.Contains(l, "send:") || !strings.Contains(l, "hit rate") {
			t.Errorf("malformed monitor line %q", l)
		}
	}
	if !strings.HasSuffix(lines[len(lines)-1], "; done") {
		t.Errorf("last line %q does not end in \"; done\"", lines[len(lines)-1])
	}
}

// TestTraceDump: -trace writes a JSON flight-recorder dump whose event
// stream covers every probe of a small scan.
func TestTraceDump(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	runOnce(t, "-max-targets", "20", "-quiet", "-trace", path)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Shards []struct {
			Recorded uint64 `json:"recorded"`
			Events   []struct {
				Kind string `json:"kind"`
				Addr string `json:"addr"`
			} `json:"events"`
		} `json:"shards"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Shards) != 1 {
		t.Fatalf("trace has %d shards, want 1", len(doc.Shards))
	}
	kinds := map[string]int{}
	for _, e := range doc.Shards[0].Events {
		kinds[e.Kind]++
		if e.Kind == "probe" && e.Addr == "" {
			t.Error("probe event without address")
		}
	}
	if kinds["probe"] != 20 {
		t.Errorf("trace has %d probe events, want 20", kinds["probe"])
	}
	if kinds["reply"]+kinds["icmp-error"] == 0 {
		t.Error("trace has no reply events")
	}
}

// TestProbeTraceNDJSONDeterministic: the -trace-out NDJSON artifact of
// a seeded scan is byte-identical across two identical runs (the
// sampler is a seed-keyed PRF and every span stream has a single
// ordered writer), and it carries the whole lifecycle: sent spans,
// simulator hop crossings, and replies.
func TestProbeTraceNDJSONDeterministic(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.ndjson")
	b := filepath.Join(dir, "b.ndjson")
	args := []string{"-max-targets", "40", "-quiet", "-seed", "7", "-trace-sample", "0", "-trace-out"}
	runOnce(t, append(args, a)...)
	runOnce(t, append(args, b)...)
	da, err := os.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	db, err := os.ReadFile(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(da) == 0 {
		t.Fatal("empty probe trace")
	}
	if !bytes.Equal(da, db) {
		t.Error("probe trace differs across identical seeded runs")
	}
	kinds := map[string]int{}
	for _, line := range strings.Split(strings.TrimSpace(string(da)), "\n") {
		var span struct {
			Kind string `json:"kind"`
			Addr string `json:"addr"`
			Node string `json:"node"`
		}
		if err := json.Unmarshal([]byte(line), &span); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		kinds[span.Kind]++
		if span.Kind == "hop" && span.Node == "" {
			t.Errorf("hop span without a node: %q", line)
		}
	}
	if kinds["sent"] != 40 {
		t.Errorf("trace has %d sent spans at full sampling, want 40", kinds["sent"])
	}
	if kinds["hop"] == 0 {
		t.Error("trace has no simulator hop crossings")
	}
	if kinds["reply"]+kinds["icmp-error"] == 0 {
		t.Error("trace has no reply spans")
	}
}

// TestProbeTracePerfettoFormat pins the Chrome-trace/Perfetto export: a
// .json -trace-out must be one {"traceEvents":[...]} document of
// instant events with the fields ui.perfetto.dev requires.
func TestProbeTracePerfettoFormat(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	runOnce(t, "-max-targets", "20", "-quiet", "-seed", "7", "-trace-sample", "0", "-trace-out", path)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(data, []byte(`{"traceEvents":[`)) {
		t.Fatalf("export does not open a traceEvents document: %.40q", data)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string `json:"name"`
			Phase string `json:"ph"`
			Scope string `json:"s"`
			PID   int    `json:"pid"`
			TID   *int   `json:"tid"`
			TS    *int64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("export has no events")
	}
	tids := map[int]bool{}
	for _, e := range doc.TraceEvents {
		if e.Phase != "i" || e.Scope != "t" || e.PID != 1 || e.TID == nil || e.TS == nil || e.Name == "" {
			t.Fatalf("malformed event %+v", e)
		}
		tids[*e.TID] = true
	}
	if len(tids) < 2 {
		t.Errorf("events span %d tracks, want scanner and simulator streams separated", len(tids))
	}
}

// TestTraceStatusAndMonitor: with tracing attached, the status snapshot
// reports the span and exemplar totals and the monitor line grows a
// trace term; an honest deployment captures no anomaly exemplars.
func TestTraceStatusAndMonitor(t *testing.T) {
	path := filepath.Join(t.TempDir(), "status.json")
	_, errOut := runOnce(t, "-max-targets", "200", "-quiet", "-seed", "7",
		"-trace-sample", "0", "-monitor-every", "64", "-status-json", path)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		TraceSpans     uint64 `json:"trace_spans"`
		TraceExemplars uint64 `json:"trace_exemplars"`
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.TraceSpans == 0 {
		t.Error("trace_spans = 0 with full sampling")
	}
	if snap.TraceExemplars != 0 {
		t.Errorf("trace_exemplars = %d on an honest deployment, want 0", snap.TraceExemplars)
	}
	if !strings.Contains(errOut, "; trace: ") || !strings.Contains(errOut, " spans, ") {
		t.Errorf("monitor output missing the trace term:\n%s", errOut)
	}
}

// TestWatchdogFlagQuiet: -watchdog on a healthy scan must never print a
// stall diagnosis.
func TestWatchdogFlagQuiet(t *testing.T) {
	_, errOut := runOnce(t, "-max-targets", "50", "-quiet", "-watchdog")
	if strings.Contains(errOut, "watchdog:") {
		t.Errorf("healthy scan produced a stall diagnosis:\n%s", errOut)
	}
}

// TestRunTwiceNoGlobalState: the FlagSet refactor must allow repeated
// in-process invocations (the old global flag.* panicked on the second
// definition).
func TestRunTwiceNoGlobalState(t *testing.T) {
	runOnce(t, "-max-targets", "5", "-quiet")
	runOnce(t, "-max-targets", "5", "-quiet", "-output", "json")
}

// TestBatchFlag: -batch sets the scanner's drain window (the send burst
// size, visible as the scan.window gauge), and the batch size is purely
// a throughput knob — a per-probe scan (-batch 1) must report the same
// targets, sends and responders as the default burst of 64. (Batched
// fast-path *replay* needs warm flows, i.e. repeated scans over one
// deployment; a single cold CLI pass probes each destination once, so
// that engagement is asserted by the engine and oracle tests instead.)
func TestBatchFlag(t *testing.T) {
	readSnap := func(path string) (map[string]uint64, map[string]int64) {
		t.Helper()
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var snap struct {
			Counters map[string]uint64 `json:"counters"`
			Gauges   map[string]int64  `json:"gauges"`
		}
		if err := json.Unmarshal(data, &snap); err != nil {
			t.Fatal(err)
		}
		return snap.Counters, snap.Gauges
	}

	dir := t.TempDir()
	single := filepath.Join(dir, "single.json")
	deflt := filepath.Join(dir, "default.json")
	runOnce(t, "-max-targets", "200", "-quiet", "-seed", "9", "-batch", "1", "-status-json", single)
	runOnce(t, "-max-targets", "200", "-quiet", "-seed", "9", "-status-json", deflt)

	sc, sg := readSnap(single)
	dc, dg := readSnap(deflt)
	if got := sg["scan.window"]; got != 1 {
		t.Errorf("scan.window gauge = %d, want the -batch value 1", got)
	}
	if got := dg["scan.window"]; got != 64 {
		t.Errorf("scan.window gauge = %d, want the default drain window 64", got)
	}
	for _, key := range []string{"scan.targets", "scan.sent", "scan.received", "scan.unique"} {
		if sc[key] != dc[key] {
			t.Errorf("%s = %d with -batch 1 vs %d with the default window; batch size must not change scan results",
				key, sc[key], dc[key])
		}
	}
	if sc["scan.sent"] != 200 {
		t.Errorf("scan.sent = %d, want 200", sc["scan.sent"])
	}
}
