// Command experiments regenerates every table and figure of the paper's
// evaluation against the simulated deployments and prints them in order.
//
//	experiments              # full default-scale run (~1/4096 population)
//	experiments -quick       # the small configuration the tests use
//	experiments -run tableII # a single artifact
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		quick   = flag.Bool("quick", false, "run the small test-sized configuration")
		only    = flag.String("run", "", "run one artifact: tableI..tableXII, figure2..figure6, mitigation, feasibility")
		seed    = flag.Int64("seed", 0, "override the suite seed (0 keeps the default)")
		scale   = flag.Float64("scale", 0, "override the population scale (e.g. 0.001 for 1/1000 of the paper)")
		width   = flag.Int("width", 0, "override the scan window width in bits")
		verbose = flag.Bool("v", false, "log progress to stderr")
	)
	flag.Parse()

	opts := experiments.Default()
	if *quick {
		opts = experiments.Quick()
	}
	if *seed != 0 {
		opts.Seed = *seed
	}
	if *scale != 0 {
		opts.Scale = *scale
		opts.MaxDevicesPerISP = 0
	}
	if *width != 0 {
		opts.WindowWidth = *width
	}
	if *verbose {
		opts.Log = os.Stderr
	}
	suite := experiments.New(opts)

	if *only == "" {
		text, err := suite.All()
		fmt.Print(text)
		return err
	}

	artifacts := map[string]func() (string, error){
		"tablei":      suite.TableI,
		"tableii":     func() (string, error) { t, _, err := suite.TableII(); return t, err },
		"tableiii":    func() (string, error) { t, _, err := suite.TableIII(); return t, err },
		"tableiv":     suite.TableIV,
		"tablev":      func() (string, error) { t, _, err := suite.TableV(); return t, err },
		"tablevi":     suite.TableVI,
		"tablevii":    func() (string, error) { t, _, err := suite.TableVII(); return t, err },
		"tableviii":   suite.TableVIII,
		"figure2":     suite.Figure2,
		"figure3":     suite.Figure3,
		"tableix":     func() (string, error) { t, _, err := suite.TableIX(); return t, err },
		"tablex":      func() (string, error) { t, _, err := suite.TableX(); return t, err },
		"figure5":     suite.Figure5,
		"tablexi":     func() (string, error) { t, _, err := suite.TableXI(); return t, err },
		"figure6":     suite.Figure6,
		"tablexii":    func() (string, error) { t, _, err := suite.TableXII(); return t, err },
		"mitigation":  suite.Mitigation,
		"feasibility": suite.Feasibility,
	}
	fn, ok := artifacts[strings.ToLower(*only)]
	if !ok {
		names := make([]string, 0, len(artifacts))
		for n := range artifacts {
			names = append(names, n)
		}
		return fmt.Errorf("unknown artifact %q (have: %s)", *only, strings.Join(names, ", "))
	}
	text, err := fn()
	if err != nil {
		return err
	}
	fmt.Print(text)
	return nil
}
